//===- support/Random.cpp -------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cmath>

using namespace pbt;
using namespace pbt::support;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  // SplitMix64 expansion guarantees a non-degenerate xoshiro state even for
  // adversarial seeds such as 0.
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  // Rejection sampling to avoid modulo bias.
  uint64_t Limit = UINT64_MAX - UINT64_MAX % Span;
  uint64_t X = next();
  while (X >= Limit)
    X = next();
  return Lo + static_cast<int64_t>(X % Span);
}

size_t Rng::index(size_t N) {
  assert(N > 0 && "index() needs a non-empty range");
  return static_cast<size_t>(range(0, static_cast<int64_t>(N) - 1));
}

double Rng::gaussian(double Mean, double StdDev) {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return Mean + StdDev * SpareGaussian;
  }
  // Box-Muller; loop rejects the measure-zero U == 0 case.
  double U = uniform();
  while (U <= 0.0)
    U = uniform();
  double V = uniform();
  double R = std::sqrt(-2.0 * std::log(U));
  double Theta = 2.0 * M_PI * V;
  SpareGaussian = R * std::sin(Theta);
  HasSpareGaussian = true;
  return Mean + StdDev * R * std::cos(Theta);
}

double Rng::exponential(double Rate) {
  assert(Rate > 0.0 && "exponential rate must be positive");
  double U = uniform();
  while (U <= 0.0)
    U = uniform();
  return -std::log(U) / Rate;
}

bool Rng::chance(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniform() < P;
}

std::vector<size_t> Rng::sampleWithoutReplacement(size_t N, size_t K) {
  assert(K <= N && "cannot sample more elements than available");
  // Partial Fisher-Yates over an index vector; O(N) setup, fine at our
  // scales and exactly uniform.
  std::vector<size_t> All(N);
  for (size_t I = 0; I != N; ++I)
    All[I] = I;
  for (size_t I = 0; I != K; ++I) {
    size_t J = I + index(N - I);
    std::swap(All[I], All[J]);
  }
  All.resize(K);
  return All;
}

Rng Rng::split() { return Rng(next()); }

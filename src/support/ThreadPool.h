//===- support/ThreadPool.h - Minimal parallel-for pool -------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool exposing a blocking parallelFor. Used to
/// parallelise the embarrassingly parallel stages of the pipeline
/// (landmark-on-every-input performance measurement, autotuner population
/// evaluation). All measured quantities are deterministic work units, so
/// parallel scheduling never perturbs results.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_THREADPOOL_H
#define PBT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pbt {
namespace support {

/// Fixed pool of worker threads with a blocking index-range parallel for.
class ThreadPool {
public:
  /// \p NumThreads == 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Runs \p Body(I) for every I in [Begin, End), distributing indices over
  /// the pool, and blocks until all indices completed. Safe to call with an
  /// empty range. Calls from within a worker are executed inline.
  ///
  /// \p GrainSize is the number of consecutive indices a worker claims per
  /// counter hit. The default of 1 is right for coarse bodies (a full
  /// program run); fine-grained task lists (the Level-2 fold x subset zoo
  /// on a small retrain reservoir) pass a larger grain so idle workers
  /// steal work in chunks instead of serialising on the claim lock.
  /// Scheduling never affects results -- bodies write index-addressed
  /// outputs.
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Body,
                   size_t GrainSize = 1);

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  static unsigned hardwareThreads();

private:
  struct Job {
    size_t Begin = 0;
    size_t End = 0;
    const std::function<void(size_t)> *Body = nullptr;
    size_t NextIndex = 0;
    size_t Remaining = 0;
    size_t GrainSize = 1;
  };

  void workerLoop();
  bool runSomeOf(Job &J);

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable JobDone;
  Job Current;
  bool HasJob = false;
  bool ShuttingDown = false;
};

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_THREADPOOL_H

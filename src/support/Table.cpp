//===- support/Table.cpp --------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

using namespace pbt;
using namespace pbt::support;

void TextTable::setHeader(std::vector<std::string> Names) {
  Header = std::move(Names);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert((Header.empty() || Cells.size() == Header.size()) &&
         "row width must match header width");
  Rows.push_back(std::move(Cells));
}

std::string TextTable::format() const {
  // Compute column widths over header and all rows.
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());
  std::vector<size_t> Width(NumCols, 0);
  auto Grow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I)
      Width[I] = std::max(Width[I], Row[I].size());
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  std::ostringstream OS;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      OS << Row[I];
      if (I + 1 != Row.size())
        OS << std::string(Width[I] - Row[I].size() + 2, ' ');
    }
    OS << '\n';
  };
  if (!Header.empty()) {
    Emit(Header);
    size_t Total = 0;
    for (size_t I = 0; I != NumCols; ++I)
      Total += Width[I] + (I + 1 != NumCols ? 2 : 0);
    OS << std::string(Total, '-') << '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return OS.str();
}

std::string support::formatDouble(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string support::formatSpeedup(double Value) {
  // Match the paper's style: two decimals normally, three below 0.1 so
  // extreme slowdowns like 0.095x stay legible.
  int Precision = Value < 0.1 ? 3 : 2;
  return formatDouble(Value, Precision) + "x";
}

std::string support::formatPercent(double Fraction) {
  return formatDouble(Fraction * 100.0, 2) + "%";
}

static bool needsCsvQuote(const std::string &Cell) {
  return Cell.find_first_of(",\"\n") != std::string::npos;
}

static std::string escapeCsv(const std::string &Cell) {
  if (!needsCsvQuote(Cell))
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

void CsvWriter::setHeader(std::vector<std::string> Names) {
  Header = std::move(Names);
}

void CsvWriter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string CsvWriter::str() const {
  // One pre-sized string built by plain appends. The previous
  // ostringstream emitter paid a formatted-stream insertion per cell,
  // which dominated fig6/fig8 report generation at large --scale (one row
  // per test input per benchmark).
  size_t Bytes = 0;
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (const std::string &Cell : Row)
      Bytes += Cell.size() + 1; // separator or newline
    Bytes += 2; // quoting slack
  };
  if (!Header.empty())
    Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  std::string Out;
  Out.reserve(Bytes);
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      const std::string &Cell = Row[I];
      if (!needsCsvQuote(Cell))
        Out += Cell;
      else
        Out += escapeCsv(Cell);
      if (I + 1 != Row.size())
        Out += ',';
    }
    Out += '\n';
  };
  if (!Header.empty())
    Emit(Header);
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

bool CsvWriter::writeFile(const std::string &Path) const {
  // Single buffered write: build the whole file in memory, hand it to the
  // OS in one call.
  std::string Text = str();
  FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), Out) == Text.size();
  return std::fclose(Out) == 0 && Ok;
}

//===- support/Statistics.h - Basic descriptive statistics ---------------===//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics used throughout the learning pipeline and the
/// benchmark harnesses (mean speedups, quartile error bars for Figure 8,
/// z-score feature normalisation, ...).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_STATISTICS_H
#define PBT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace pbt {
namespace support {

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double> &V);

/// Population variance; 0 for fewer than two samples.
double variance(const std::vector<double> &V);

/// Population standard deviation.
double stddev(const std::vector<double> &V);

/// Geometric mean of strictly positive values; 0 for empty input.
double geomean(const std::vector<double> &V);

/// Linear-interpolation quantile, Q in [0, 1]. Copies and sorts internally.
double quantile(std::vector<double> V, double Q);

/// Median (quantile 0.5).
double median(const std::vector<double> &V);

double minOf(const std::vector<double> &V);
double maxOf(const std::vector<double> &V);

/// Five-number-plus summary of a sample, as used for the Figure 8 error
/// bars (median, first/third quartile, min, max).
struct Summary {
  size_t Count = 0;
  double Mean = 0.0;
  double StdDev = 0.0;
  double Min = 0.0;
  double Q1 = 0.0;
  double Median = 0.0;
  double Q3 = 0.0;
  double Max = 0.0;

  static Summary of(const std::vector<double> &V);
};

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_STATISTICS_H

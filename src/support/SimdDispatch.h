//===- support/SimdDispatch.h - Runtime ISA tier selection ----------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime SIMD dispatch for the vectorized serving path. The host's
/// best usable tier is probed once (CPUID via __builtin_cpu_supports on
/// x86; everything else is Scalar), and the `PBT_SIMD` environment
/// variable can force a LOWER tier -- `scalar`, `sse42` or `avx2` -- so
/// tests and CI can pin the dispatch independent of the host. A request
/// above what the host supports clamps down to the detected tier: the
/// override exists to exercise fallbacks, never to crash the process
/// with an illegal instruction.
///
/// The tiers order Scalar < Sse42 < Avx2, so "best available" is a
/// plain max and clamping is a plain min.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_SIMDDISPATCH_H
#define PBT_SUPPORT_SIMDDISPATCH_H

#include <cstdint>
#include <vector>

namespace pbt {
namespace support {

enum class SimdTier : uint8_t {
  Scalar = 0,
  Sse42 = 1,
  Avx2 = 2,
};

/// Stable lowercase name ("scalar" / "sse42" / "avx2"); what PBT_SIMD
/// accepts and what reports print.
const char *simdTierName(SimdTier Tier);

/// Parses a PBT_SIMD value. Returns false (leaving \p Out untouched) on
/// anything but the three tier names.
bool parseSimdTier(const char *Text, SimdTier &Out);

/// The best tier the host can execute, ignoring any override.
SimdTier detectSimdTier();

/// Pure override policy: the tier to serve with given a requested and a
/// detected tier (min of the two -- never dispatch above the host).
inline SimdTier clampSimdTier(SimdTier Requested, SimdTier Detected) {
  return Requested < Detected ? Requested : Detected;
}

/// Resolves an override string against a detected tier: empty/invalid
/// text keeps the detected tier, a valid one clamps as above. Split out
/// from the environment read so tests can drive it directly.
SimdTier resolveSimdTier(const char *EnvValue, SimdTier Detected);

/// The process-wide serving tier: detectSimdTier() filtered through the
/// PBT_SIMD environment variable, computed once and cached.
SimdTier activeSimdTier();

/// Every tier valid on this host, Scalar first (the tiers parity suites
/// must iterate).
std::vector<SimdTier> availableSimdTiers();

} // namespace support
} // namespace pbt

#endif // PBT_SUPPORT_SIMDDISPATCH_H

//===- store/ModelStore.h - Crash-safe on-disk model store -----------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable half of the trainer/server split: an on-disk store of
/// epoch-numbered model images that one publisher writes and N serving
/// replicas consume, designed so a reader can NEVER observe a torn or
/// half-written model no matter where the publisher dies.
///
/// Layout of a store directory:
///
///   epoch-000001.pbt   model image: the exact serializeModel() bytes of
///                      the v2 text format (the golden-anchored source of
///                      truth; store images round-trip byte-identically)
///   MANIFEST           one record per epoch: number, byte size, FNV-1a
///                      checksum, rollout state -- the durable log of the
///                      rollout state machine (rollout/RolloutController.h)
///   CURRENT            the fleet-wide promoted epoch, updated LAST
///   .tmp-*             in-flight writes (removed by recovery)
///
/// Every durable write follows temp-file + fsync + atomic rename (+
/// parent-directory fsync), in a fixed order: image, then MANIFEST, then
/// CURRENT. A crash at any point leaves either the old state or the new
/// state visible, never a mix a reader would mis-load:
///
///   crash during image write      -> .tmp orphan, removed by recovery
///   crash before image rename     -> same
///   crash before MANIFEST update  -> unreferenced epoch image, removed
///   crash before CURRENT update   -> MANIFEST already names the new
///                                    active epoch; recovery rolls the
///                                    promotion FORWARD by rewriting
///                                    CURRENT (redo, never undo)
///
/// Checksums close the remaining hole: an image whose bytes rot (or are
/// corrupted by an injected fault) is rejected at load, quarantined by
/// recovery, and readers fall back to the newest remaining good epoch.
///
/// Concurrency contract: one writer (the publisher owns the ModelStore
/// object); any number of readers through the stateless functions at the
/// bottom, safe concurrently with the writer because every visible file
/// lands by atomic rename. The write paths are instrumented with
/// support/FaultInject.h failpoints; an injected crash propagates as
/// support::FaultCrash with the directory left mid-protocol, which is
/// exactly what the recovery tests feed on.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_STORE_MODELSTORE_H
#define PBT_STORE_MODELSTORE_H

#include "serialize/ModelIO.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pbt {
namespace store {

/// FNV-1a 64-bit over \p Size bytes: the per-epoch integrity checksum.
/// Dependency-free and byte-order independent (it hashes bytes).
uint64_t fnv1a64(const char *Data, size_t Size);

/// "epoch-000042.pbt" -- the image file name for \p Epoch.
std::string imageFileName(uint64_t Epoch);

/// Rollout state of one epoch, durable in the MANIFEST. The legal
/// transitions are the rollout state machine's:
///   Published -> Canary -> Active | RolledBack
///   Active -> Retired (when a later epoch promotes)
enum class EpochState : unsigned {
  Published = 0, ///< image durable, not serving anywhere
  Canary,        ///< serving on the canary replica only
  Active,        ///< fleet-wide promoted (the CURRENT epoch)
  Retired,       ///< formerly Active, superseded by a later promote
  RolledBack,    ///< failed canary (or demoted in-flight by recovery)
};

const char *epochStateName(EpochState S);
bool parseEpochState(const std::string &Name, EpochState &Out);

/// One MANIFEST record.
struct EpochRecord {
  uint64_t Epoch = 0;
  uint64_t Size = 0;
  uint64_t Checksum = 0;
  EpochState State = EpochState::Published;
};

/// What open()'s recovery pass found and repaired; every counter is a
/// crash-point class the fault-injection wall drives.
struct RecoveryReport {
  unsigned TempFilesRemoved = 0;
  /// Epoch images no MANIFEST record references (crash between image
  /// rename and MANIFEST update): never durably published, removed.
  unsigned OrphanImagesRemoved = 0;
  /// Records whose image is missing, short, or checksum-mismatched:
  /// image quarantined as .bad-*, record dropped.
  unsigned CorruptImagesQuarantined = 0;
  /// Published/Canary records demoted to RolledBack: the rollout they
  /// belonged to died mid-flight; the fleet converges to the last
  /// durable Active epoch instead.
  unsigned InFlightDemoted = 0;
  /// CURRENT was missing, stale, or pointed at a dead epoch and was
  /// rewritten (roll-forward of a promotion, or fallback).
  bool CurrentRepaired = false;
};

/// The single-writer store handle. Construct, open() (recovery runs
/// there), then publish/promote/rollback in rollout order.
class ModelStore {
public:
  explicit ModelStore(std::string Dir) : Dir(std::move(Dir)) {}

  /// Creates the directory when absent, then runs crash recovery: drops
  /// temp files, quarantines corrupt images, removes unreferenced ones,
  /// demotes in-flight epochs, and repairs CURRENT (rolling an
  /// interrupted promotion forward). Idempotent; call once per handle.
  serialize::LoadStatus open();

  const std::string &dir() const { return Dir; }
  const RecoveryReport &recovery() const { return Recovered; }

  /// Writes \p ModelText as the next epoch image (temp + fsync + rename),
  /// records it in the MANIFEST as Published, and returns its number.
  /// On failure (e.g. failing fsync) nothing durable changes.
  serialize::LoadStatus publish(const std::string &ModelText,
                                uint64_t &EpochOut);

  /// Durable state transition of one epoch (Publish -> Canary etc.).
  serialize::LoadStatus setState(uint64_t Epoch, EpochState S);

  /// Promotes \p Epoch fleet-wide: one MANIFEST rewrite marks it Active
  /// (retiring the previous Active), THEN CURRENT is updated -- the
  /// order recovery's roll-forward depends on.
  serialize::LoadStatus promote(uint64_t Epoch);

  /// Marks \p Epoch RolledBack. CURRENT is untouched (it still names
  /// the champion).
  serialize::LoadStatus rollback(uint64_t Epoch);

  /// Deletes all but the newest \p KeepFinished Retired/RolledBack
  /// epochs (images + records). Active/Canary/Published epochs are
  /// never collected.
  serialize::LoadStatus gc(size_t KeepFinished);

  /// The promoted epoch (0 = nothing promoted yet).
  uint64_t currentEpoch() const { return Current; }
  const std::vector<EpochRecord> &records() const { return Records; }
  const EpochRecord *record(uint64_t Epoch) const;

  /// Loads + checksum-verifies one epoch image (no fallback).
  serialize::LoadStatus loadVerified(uint64_t Epoch,
                                     std::string &Text) const;

private:
  serialize::LoadStatus writeManifest();
  serialize::LoadStatus writeCurrent(uint64_t Epoch);

  std::string Dir;
  std::vector<EpochRecord> Records; // ascending by epoch
  uint64_t Current = 0;
  RecoveryReport Recovered;
  bool Opened = false;
};

//===----------------------------------------------------------------------===//
// Reader side: stateless, safe concurrently with one writer.
//===----------------------------------------------------------------------===//

/// MANIFEST + CURRENT as the filesystem shows them right now.
struct ReaderSnapshot {
  uint64_t CurrentEpoch = 0; ///< 0 = no CURRENT (nothing promoted)
  std::vector<EpochRecord> Records;
};

/// Parses MANIFEST and CURRENT. A missing MANIFEST is an empty store
/// (Ok, no records); a malformed one is an error.
serialize::LoadStatus readSnapshot(const std::string &Dir,
                                   ReaderSnapshot &Out);

/// Just the CURRENT pointer -- the cheap poll a serving replica runs to
/// detect a promotion. 0 when absent.
serialize::LoadStatus readCurrentPointer(const std::string &Dir,
                                         uint64_t &Epoch);

/// A checksum-verified model image plus how it was found.
struct VerifiedModel {
  uint64_t Epoch = 0;
  std::string Text;
  /// Images rejected (missing/short/checksum mismatch) before this one
  /// loaded -- each is a torn read that never reached serving.
  unsigned RejectedLoads = 0;
};

/// Loads the CURRENT epoch's image, verifying size + checksum against
/// the MANIFEST. On rejection falls back epoch-by-epoch to the newest
/// remaining Active/Retired record; fails only when no good image
/// exists. This is THE replica load path: a torn or corrupt image can
/// cost a fallback, never a mis-served model.
serialize::LoadStatus loadCurrentVerified(const std::string &Dir,
                                          VerifiedModel &Out);

/// Loads exactly \p Epoch's image, verifying size + checksum against the
/// MANIFEST -- no fallback. The canary load path: a canary must serve
/// exactly the candidate or not serve it at all.
serialize::LoadStatus loadEpochVerified(const std::string &Dir,
                                        uint64_t Epoch, std::string &Text);

} // namespace store
} // namespace pbt

#endif // PBT_STORE_MODELSTORE_H

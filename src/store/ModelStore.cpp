//===- store/ModelStore.cpp - Crash-safe on-disk model store ---------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "store/ModelStore.h"

#include "support/FaultInject.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace pbt {
namespace store {

using serialize::LoadStatus;
using support::FaultInjector;
using support::FaultPoint;

uint64_t fnv1a64(const char *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I != Size; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string imageFileName(uint64_t Epoch) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "epoch-%06llu.pbt",
                static_cast<unsigned long long>(Epoch));
  return Buf;
}

const char *epochStateName(EpochState S) {
  switch (S) {
  case EpochState::Published:
    return "published";
  case EpochState::Canary:
    return "canary";
  case EpochState::Active:
    return "active";
  case EpochState::Retired:
    return "retired";
  case EpochState::RolledBack:
    return "rolled-back";
  }
  return "unknown";
}

bool parseEpochState(const std::string &Name, EpochState &Out) {
  for (unsigned I = 0; I <= static_cast<unsigned>(EpochState::RolledBack);
       ++I) {
    EpochState S = static_cast<EpochState>(I);
    if (Name == epochStateName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

namespace {

constexpr const char *kManifestName = "MANIFEST";
constexpr const char *kCurrentName = "CURRENT";
constexpr const char *kManifestHeader = "pbt-store v1";
constexpr const char *kTmpPrefix = ".tmp-";
constexpr const char *kBadPrefix = ".bad-";

std::string joinPath(const std::string &Dir, const std::string &Name) {
  return Dir + "/" + Name;
}

std::string hex64(uint64_t V) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool parseHex64(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text.size() > 16)
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | Digit;
  }
  Out = V;
  return true;
}

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text.size() > 19)
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

/// fsync with the slow/failing failpoints applied. Returns false only on
/// (injected or real) fsync failure.
bool durableFsync(int Fd) {
  FaultInjector &Inj = FaultInjector::instance();
  if (Inj.fire(FaultPoint::FsyncSlow))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  if (Inj.fire(FaultPoint::FsyncFail))
    return false;
  return ::fsync(Fd) == 0;
}

/// fsyncs \p Dir so a just-renamed entry is durable. Best effort: some
/// filesystems refuse directory fds; that only weakens durability, never
/// atomicity, so failures are ignored.
void fsyncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

/// The one durable-write primitive: write \p Data to a .tmp file in
/// \p Dir, fsync, atomically rename to \p Name, fsync the directory.
/// \p Faulty arms the image-write failpoints (torn write, crash before
/// rename); the MANIFEST/CURRENT writers keep their own crash points at
/// higher-level protocol boundaries instead.
LoadStatus writeFileDurable(const std::string &Dir, const std::string &Name,
                            const std::string &Data, bool Faulty) {
  FaultInjector &Inj = FaultInjector::instance();
  std::string TmpPath = joinPath(Dir, kTmpPrefix + Name);
  std::string FinalPath = joinPath(Dir, Name);

  int Fd = ::open(TmpPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (Fd < 0)
    return LoadStatus::failure("cannot create '" + TmpPath + "'");

  size_t WriteSize = Data.size();
  bool Torn = Faulty && Inj.fire(FaultPoint::TornWrite);
  if (Torn)
    WriteSize = Data.size() / 2; // prefix only, then die below

  size_t Off = 0;
  while (Off < WriteSize) {
    ssize_t N = ::write(Fd, Data.data() + Off, WriteSize - Off);
    if (N < 0) {
      ::close(Fd);
      ::unlink(TmpPath.c_str());
      return LoadStatus::failure("short write to '" + TmpPath + "'");
    }
    Off += static_cast<size_t>(N);
  }
  if (Torn) {
    // A torn write dies without fsync/rename: the .tmp prefix is what a
    // real mid-write power cut leaves. Leak the fd like the dead process
    // would? No -- fds are process state, not disk state; close it.
    ::close(Fd);
    throw support::FaultCrash(FaultPoint::TornWrite);
  }
  if (!durableFsync(Fd)) {
    ::close(Fd);
    ::unlink(TmpPath.c_str());
    return LoadStatus::failure("fsync('" + TmpPath + "') failed");
  }
  ::close(Fd);

  if (Faulty)
    Inj.fireOrCrash(FaultPoint::CrashBeforeRename);

  if (std::rename(TmpPath.c_str(), FinalPath.c_str()) != 0)
    return LoadStatus::failure("rename('" + TmpPath + "' -> '" + FinalPath +
                               "') failed");
  fsyncDir(Dir);
  return LoadStatus::success();
}

LoadStatus readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return LoadStatus::failure("cannot open '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad())
    return LoadStatus::failure("read error on '" + Path + "'");
  Out = SS.str();
  return LoadStatus::success();
}

std::string renderManifest(const std::vector<EpochRecord> &Records) {
  std::string Out = kManifestHeader;
  Out += '\n';
  for (const EpochRecord &R : Records) {
    Out += "epoch " + std::to_string(R.Epoch) + " " + std::to_string(R.Size) +
           " " + hex64(R.Checksum) + " " + epochStateName(R.State) + "\n";
  }
  Out += "end\n";
  return Out;
}

LoadStatus parseManifest(const std::string &Text,
                         std::vector<EpochRecord> &Out) {
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != kManifestHeader)
    return LoadStatus::failure("MANIFEST: bad or missing header");
  std::vector<EpochRecord> Records;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    if (Line == "end") {
      SawEnd = true;
      break;
    }
    std::istringstream LS(Line);
    std::string Key, EpochTok, SizeTok, SumTok, StateTok;
    if (!(LS >> Key >> EpochTok >> SizeTok >> SumTok >> StateTok) ||
        Key != "epoch")
      return LoadStatus::failure("MANIFEST: malformed record '" + Line + "'");
    EpochRecord R;
    if (!parseU64(EpochTok, R.Epoch) || R.Epoch == 0 ||
        !parseU64(SizeTok, R.Size) || !parseHex64(SumTok, R.Checksum) ||
        !parseEpochState(StateTok, R.State))
      return LoadStatus::failure("MANIFEST: malformed record '" + Line + "'");
    if (!Records.empty() && R.Epoch <= Records.back().Epoch)
      return LoadStatus::failure("MANIFEST: epochs out of order");
    Records.push_back(R);
  }
  // A manifest lands by atomic rename, so a truncated one means someone
  // edited it by hand; refuse rather than guess.
  if (!SawEnd)
    return LoadStatus::failure("MANIFEST: missing end marker");
  Out = std::move(Records);
  return LoadStatus::success();
}

LoadStatus parseCurrent(const std::string &Text, uint64_t &Epoch) {
  std::istringstream In(Text);
  std::string Key, EpochTok;
  if (!(In >> Key >> EpochTok) || Key != "epoch" ||
      !parseU64(EpochTok, Epoch) || Epoch == 0)
    return LoadStatus::failure("CURRENT: malformed content");
  return LoadStatus::success();
}

/// Verifies one record's image on disk; Text is filled on success.
LoadStatus verifyImage(const std::string &Dir, const EpochRecord &R,
                       std::string &Text) {
  std::string Path = joinPath(Dir, imageFileName(R.Epoch));
  std::string Bytes;
  LoadStatus St = readWholeFile(Path, Bytes);
  if (!St)
    return St;
  if (Bytes.size() != R.Size)
    return LoadStatus::failure(
        "'" + Path + "': size " + std::to_string(Bytes.size()) +
        " does not match manifest " + std::to_string(R.Size));
  uint64_t Sum = fnv1a64(Bytes.data(), Bytes.size());
  if (Sum != R.Checksum)
    return LoadStatus::failure("'" + Path + "': checksum mismatch (image " +
                               hex64(Sum) + ", manifest " + hex64(R.Checksum) +
                               ")");
  Text = std::move(Bytes);
  return LoadStatus::success();
}

} // namespace

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

const EpochRecord *ModelStore::record(uint64_t Epoch) const {
  for (const EpochRecord &R : Records)
    if (R.Epoch == Epoch)
      return &R;
  return nullptr;
}

LoadStatus ModelStore::writeManifest() {
  return writeFileDurable(Dir, kManifestName, renderManifest(Records),
                          /*Faulty=*/false);
}

LoadStatus ModelStore::writeCurrent(uint64_t Epoch) {
  LoadStatus St =
      writeFileDurable(Dir, kCurrentName,
                       "epoch " + std::to_string(Epoch) + "\n",
                       /*Faulty=*/false);
  if (St)
    Current = Epoch;
  return St;
}

LoadStatus ModelStore::open() {
  if (Opened)
    return LoadStatus::success();
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return LoadStatus::failure("cannot create store directory '" + Dir +
                               "': " + EC.message());

  // 1. In-flight temp files are by definition not durable state.
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC)) {
    std::string Name = E.path().filename().string();
    if (Name.rfind(kTmpPrefix, 0) == 0) {
      fs::remove(E.path(), EC);
      ++Recovered.TempFilesRemoved;
    }
  }

  // 2. The MANIFEST is the durable truth about which epochs exist.
  std::string ManifestText;
  std::string ManifestPath = joinPath(Dir, kManifestName);
  bool HaveManifest = fs::exists(ManifestPath);
  if (HaveManifest) {
    LoadStatus St = readWholeFile(ManifestPath, ManifestText);
    if (!St)
      return St;
    St = parseManifest(ManifestText, Records);
    if (!St)
      return St;
  }

  // 3. Quarantine records whose image is missing, short, or corrupt.
  bool Dirty = false;
  {
    std::vector<EpochRecord> Good;
    for (const EpochRecord &R : Records) {
      std::string Text;
      if (verifyImage(Dir, R, Text)) {
        Good.push_back(R);
        continue;
      }
      std::string Image = joinPath(Dir, imageFileName(R.Epoch));
      // Keep the bad bytes for forensics, out of the epoch namespace.
      std::rename(Image.c_str(),
                  joinPath(Dir, kBadPrefix + imageFileName(R.Epoch)).c_str());
      ++Recovered.CorruptImagesQuarantined;
      Dirty = true;
    }
    Records = std::move(Good);
  }

  // 4. Epoch images no record references were never durably published
  //    (the crash-before-manifest window); remove them.
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC)) {
    std::string Name = E.path().filename().string();
    if (Name.rfind("epoch-", 0) != 0)
      continue;
    uint64_t Epoch = 0;
    size_t Dot = Name.find('.');
    if (Dot == std::string::npos ||
        !parseU64(Name.substr(6, Dot - 6), Epoch) || record(Epoch))
      continue;
    fs::remove(E.path(), EC);
    ++Recovered.OrphanImagesRemoved;
  }

  // 5. Reconcile the state machine. At most one Active epoch (newest
  //    wins -- an older duplicate can only come from hand edits).
  uint64_t Active = 0;
  for (EpochRecord &R : Records) {
    if (R.State != EpochState::Active)
      continue;
    if (Active != 0) {
      const EpochRecord *Old = record(Active);
      const_cast<EpochRecord *>(Old)->State = EpochState::Retired;
      Dirty = true;
    }
    Active = R.Epoch;
  }

  // 6. CURRENT: roll an interrupted promotion forward (MANIFEST already
  //    names the Active epoch; CURRENT just lags), or repair a pointer
  //    at a quarantined/unknown epoch.
  uint64_t Pointed = 0;
  std::string CurrentText;
  if (readWholeFile(joinPath(Dir, kCurrentName), CurrentText))
    parseCurrent(CurrentText, Pointed); // malformed -> 0, repaired below

  if (Active != 0) {
    Current = Active;
    if (Pointed != Active) {
      LoadStatus St = writeCurrent(Active);
      if (!St)
        return St;
      Recovered.CurrentRepaired = true;
    }
  } else if (Pointed != 0 && record(Pointed)) {
    // CURRENT names a live epoch the manifest does not mark Active --
    // only reachable through hand edits, but converge anyway: trust the
    // manifest-referenced image and finish the promotion.
    const_cast<EpochRecord *>(record(Pointed))->State = EpochState::Active;
    Current = Pointed;
    Dirty = true;
  } else {
    Current = 0;
    if (Pointed != 0) {
      // Pointer at a dead epoch and nothing promoted: drop it so readers
      // see "no current" rather than an unloadable epoch.
      fs::remove(joinPath(Dir, kCurrentName), EC);
      Recovered.CurrentRepaired = true;
    }
  }

  // 7. Published/Canary epochs other than CURRENT were mid-rollout when
  //    the fleet died; the rollout is over, demote them.
  for (EpochRecord &R : Records) {
    if (R.Epoch != Current && (R.State == EpochState::Published ||
                               R.State == EpochState::Canary)) {
      R.State = EpochState::RolledBack;
      ++Recovered.InFlightDemoted;
      Dirty = true;
    }
  }

  if (Dirty || (!HaveManifest && !Records.empty())) {
    LoadStatus St = writeManifest();
    if (!St)
      return St;
  }
  Opened = true;
  return LoadStatus::success();
}

LoadStatus ModelStore::publish(const std::string &ModelText,
                               uint64_t &EpochOut) {
  if (!Opened)
    return LoadStatus::failure("store '" + Dir + "' is not open");
  if (ModelText.empty())
    return LoadStatus::failure("refusing to publish an empty model image");
  uint64_t Epoch = Records.empty() ? 1 : Records.back().Epoch + 1;

  EpochRecord R;
  R.Epoch = Epoch;
  R.Size = ModelText.size();
  R.Checksum = fnv1a64(ModelText.data(), ModelText.size());
  R.State = EpochState::Published;

  // Image first (torn-write / crash-before-rename failpoints live in the
  // durable writer), checksum recorded above from the intended bytes.
  LoadStatus St =
      writeFileDurable(Dir, imageFileName(Epoch), ModelText, /*Faulty=*/true);
  if (!St)
    return St;

  FaultInjector &Inj = FaultInjector::instance();
  if (Inj.fire(FaultPoint::CorruptChecksum)) {
    // Rot the published bytes behind the recorded checksum: the load
    // path must now reject this image.
    std::string Path = joinPath(Dir, imageFileName(Epoch));
    int Fd = ::open(Path.c_str(), O_WRONLY);
    if (Fd >= 0) {
      char Byte = '#';
      ::pwrite(Fd, &Byte, 1, static_cast<off_t>(ModelText.size() / 2));
      ::close(Fd);
    }
  }

  Inj.fireOrCrash(FaultPoint::CrashBeforeManifest);

  Records.push_back(R);
  St = writeManifest();
  if (!St) {
    Records.pop_back();
    return St;
  }
  EpochOut = Epoch;
  return LoadStatus::success();
}

LoadStatus ModelStore::setState(uint64_t Epoch, EpochState S) {
  if (!Opened)
    return LoadStatus::failure("store '" + Dir + "' is not open");
  for (EpochRecord &R : Records) {
    if (R.Epoch != Epoch)
      continue;
    EpochState Saved = R.State;
    R.State = S;
    LoadStatus St = writeManifest();
    if (!St)
      R.State = Saved;
    return St;
  }
  return LoadStatus::failure("epoch " + std::to_string(Epoch) +
                             " is not in the store");
}

LoadStatus ModelStore::promote(uint64_t Epoch) {
  if (!Opened)
    return LoadStatus::failure("store '" + Dir + "' is not open");
  EpochRecord *Target = nullptr;
  for (EpochRecord &R : Records)
    if (R.Epoch == Epoch)
      Target = &R;
  if (!Target)
    return LoadStatus::failure("epoch " + std::to_string(Epoch) +
                               " is not in the store");

  // One manifest rewrite covers retire-old + activate-new, so the two
  // can never be observed half-done.
  std::vector<EpochRecord> Saved = Records;
  for (EpochRecord &R : Records) {
    if (R.Epoch == Epoch)
      R.State = EpochState::Active;
    else if (R.State == EpochState::Active)
      R.State = EpochState::Retired;
  }
  LoadStatus St = writeManifest();
  if (!St) {
    Records = std::move(Saved);
    return St;
  }

  // THE window: manifest says Active, CURRENT still old. Recovery rolls
  // forward from exactly here.
  FaultInjector::instance().fireOrCrash(
      FaultPoint::CrashBetweenManifestAndCurrent);

  return writeCurrent(Epoch);
}

LoadStatus ModelStore::rollback(uint64_t Epoch) {
  return setState(Epoch, EpochState::RolledBack);
}

LoadStatus ModelStore::gc(size_t KeepFinished) {
  if (!Opened)
    return LoadStatus::failure("store '" + Dir + "' is not open");
  // Finished = Retired or RolledBack; records are epoch-ascending, so
  // walk from the back keeping the newest KeepFinished of them.
  std::vector<EpochRecord> Kept;
  std::vector<uint64_t> Doomed;
  size_t FinishedKept = 0;
  for (auto It = Records.rbegin(); It != Records.rend(); ++It) {
    bool Finished = It->State == EpochState::Retired ||
                    It->State == EpochState::RolledBack;
    if (Finished && FinishedKept >= KeepFinished)
      Doomed.push_back(It->Epoch);
    else {
      if (Finished)
        ++FinishedKept;
      Kept.push_back(*It);
    }
  }
  if (Doomed.empty())
    return LoadStatus::success();
  std::reverse(Kept.begin(), Kept.end());
  std::vector<EpochRecord> Saved = std::move(Records);
  Records = std::move(Kept);
  LoadStatus St = writeManifest();
  if (!St) {
    Records = std::move(Saved);
    return St;
  }
  // Images go after the manifest stops referencing them; a crash between
  // leaves orphans recovery removes.
  std::error_code EC;
  for (uint64_t Epoch : Doomed)
    fs::remove(joinPath(Dir, imageFileName(Epoch)), EC);
  return LoadStatus::success();
}

LoadStatus ModelStore::loadVerified(uint64_t Epoch, std::string &Text) const {
  const EpochRecord *R = record(Epoch);
  if (!R)
    return LoadStatus::failure("epoch " + std::to_string(Epoch) +
                               " is not in the store");
  return verifyImage(Dir, *R, Text);
}

//===----------------------------------------------------------------------===//
// Readers
//===----------------------------------------------------------------------===//

LoadStatus readSnapshot(const std::string &Dir, ReaderSnapshot &Out) {
  ReaderSnapshot S;
  std::string ManifestPath = joinPath(Dir, kManifestName);
  std::error_code EC;
  if (fs::exists(ManifestPath, EC)) {
    std::string Text;
    LoadStatus St = readWholeFile(ManifestPath, Text);
    if (!St)
      return St;
    St = parseManifest(Text, S.Records);
    if (!St)
      return St;
  }
  std::string CurrentText;
  if (readWholeFile(joinPath(Dir, kCurrentName), CurrentText)) {
    uint64_t Epoch = 0;
    if (parseCurrent(CurrentText, Epoch))
      S.CurrentEpoch = Epoch;
  }
  Out = std::move(S);
  return LoadStatus::success();
}

LoadStatus readCurrentPointer(const std::string &Dir, uint64_t &Epoch) {
  Epoch = 0;
  std::string Text;
  std::error_code EC;
  if (!fs::exists(joinPath(Dir, kCurrentName), EC))
    return LoadStatus::success(); // no promotion yet; not an error
  LoadStatus St = readWholeFile(joinPath(Dir, kCurrentName), Text);
  if (!St)
    return St;
  return parseCurrent(Text, Epoch);
}

LoadStatus loadCurrentVerified(const std::string &Dir, VerifiedModel &Out) {
  ReaderSnapshot Snap;
  LoadStatus St = readSnapshot(Dir, Snap);
  if (!St)
    return St;
  if (Snap.CurrentEpoch == 0)
    return LoadStatus::failure("store '" + Dir +
                               "' has no promoted epoch yet");

  VerifiedModel V;
  std::string FirstError;
  // CURRENT first, then newest-to-oldest over every epoch that has ever
  // served fleet-wide (Active or Retired): the fallback chain.
  std::vector<uint64_t> Order;
  Order.push_back(Snap.CurrentEpoch);
  for (auto It = Snap.Records.rbegin(); It != Snap.Records.rend(); ++It)
    if (It->Epoch != Snap.CurrentEpoch &&
        (It->State == EpochState::Active || It->State == EpochState::Retired))
      Order.push_back(It->Epoch);

  for (uint64_t Epoch : Order) {
    const EpochRecord *R = nullptr;
    for (const EpochRecord &Rec : Snap.Records)
      if (Rec.Epoch == Epoch)
        R = &Rec;
    if (!R) {
      ++V.RejectedLoads;
      if (FirstError.empty())
        FirstError = "CURRENT epoch " + std::to_string(Epoch) +
                     " has no manifest record";
      continue;
    }
    std::string Text;
    LoadStatus Img = verifyImage(Dir, *R, Text);
    if (Img) {
      V.Epoch = Epoch;
      V.Text = std::move(Text);
      Out = std::move(V);
      return LoadStatus::success();
    }
    ++V.RejectedLoads;
    if (FirstError.empty())
      FirstError = Img.Error;
  }
  return LoadStatus::failure("no loadable epoch in store '" + Dir +
                             "' (first rejection: " + FirstError + ")");
}

LoadStatus loadEpochVerified(const std::string &Dir, uint64_t Epoch,
                             std::string &Text) {
  ReaderSnapshot Snap;
  LoadStatus St = readSnapshot(Dir, Snap);
  if (!St)
    return St;
  for (const EpochRecord &R : Snap.Records)
    if (R.Epoch == Epoch)
      return verifyImage(Dir, R, Text);
  return LoadStatus::failure("epoch " + std::to_string(Epoch) +
                             " is not in the store");
}

} // namespace store
} // namespace pbt

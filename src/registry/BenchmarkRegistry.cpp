//===- registry/BenchmarkRegistry.cpp ----------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "registry/BenchmarkRegistry.h"

#include "runtime/AdaptiveService.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

using namespace pbt;
using namespace pbt::registry;

BenchmarkFactory::~BenchmarkFactory() = default;

BenchmarkRegistry &BenchmarkRegistry::instance() {
  static BenchmarkRegistry R;
  return R;
}

void BenchmarkRegistry::add(std::unique_ptr<BenchmarkFactory> Factory) {
  if (!Factory)
    return;
  if (lookup(Factory->name())) {
    // First registration wins; shout so an accidental key reuse in a new
    // workload file is not a silent no-show in the catalog.
    std::fprintf(stderr,
                 "pbtuner: duplicate benchmark registration '%s' ignored\n",
                 Factory->name().c_str());
    return;
  }
  Factories.push_back(std::move(Factory));
}

std::vector<const BenchmarkFactory *> BenchmarkRegistry::all() const {
  std::vector<const BenchmarkFactory *> Out;
  Out.reserve(Factories.size());
  for (const auto &F : Factories)
    Out.push_back(F.get());
  // Static-initialisation order across translation units is unspecified,
  // so the catalog order is imposed here, not at registration time.
  std::sort(Out.begin(), Out.end(),
            [](const BenchmarkFactory *A, const BenchmarkFactory *B) {
              if (A->suiteOrder() != B->suiteOrder())
                return A->suiteOrder() < B->suiteOrder();
              return A->name() < B->name();
            });
  return Out;
}

std::vector<std::string> BenchmarkRegistry::names() const {
  std::vector<std::string> Out;
  for (const BenchmarkFactory *F : all())
    Out.push_back(F->name());
  return Out;
}

const BenchmarkFactory *
BenchmarkRegistry::lookup(const std::string &Name) const {
  for (const auto &F : Factories)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

const BenchmarkFactory &BenchmarkRegistry::get(const std::string &Name) const {
  if (const BenchmarkFactory *F = lookup(Name))
    return *F;
  std::string Msg = "unknown benchmark '" + Name + "'; registered:";
  for (const std::string &N : names())
    Msg += " " + N;
  throw std::out_of_range(Msg);
}

RegisterBenchmark::RegisterBenchmark(std::unique_ptr<BenchmarkFactory> Factory) {
  BenchmarkRegistry::instance().add(std::move(Factory));
}

SimpleBenchmarkFactory::SimpleBenchmarkFactory(std::string Name,
                                               std::string Description,
                                               int SuiteOrder,
                                               uint64_t ProgramSeed,
                                               uint64_t PipelineSeed,
                                               Maker Make)
    : Name(std::move(Name)), Description(std::move(Description)),
      Order(SuiteOrder), ProgramSeed(ProgramSeed), PipelineSeed(PipelineSeed),
      Make(Make) {}

ProgramPtr SimpleBenchmarkFactory::makeProgram(double Scale,
                                               uint64_t Seed) const {
  return Make(Scale, Seed);
}

core::PipelineOptions
SimpleBenchmarkFactory::defaultOptions(double Scale) const {
  return paperPipelineOptions(Scale, PipelineSeed);
}

/// Shared pipeline defaults; landmark count scales with sqrt of the input
/// scale so the evidence table stays roughly linear in Scale.
core::PipelineOptions registry::paperPipelineOptions(double Scale,
                                                     uint64_t PipelineSeed) {
  core::PipelineOptions O;
  O.L1.NumLandmarks = std::max<unsigned>(
      4, static_cast<unsigned>(12.0 * std::sqrt(Scale)));
  O.L1.Seed = PipelineSeed;
  O.L1.Tuner.PopulationSize = 14;
  O.L1.Tuner.Generations = 10;
  // Tune each landmark against a neighbourhood of its centroid so
  // variable-accuracy configurations stay safe on unseen cluster members;
  // this is what makes adaptive classifiers (not just static-best)
  // clear the satisfaction threshold at reduced scale.
  O.L1.TuningNeighborhood = 6;
  O.L2.CVFolds = 5;
  O.L2.Seed = PipelineSeed ^ 0xABCDEF;
  // Shallow trees generalise better at laptop-scale training-set sizes,
  // keeping cross-validated satisfaction honest.
  O.L2.Tree.MaxDepth = 8;
  O.L2.Tree.MinSamplesLeaf = 3;
  O.TrainFraction = 0.5;
  O.SplitSeed = PipelineSeed * 31 + 7;
  return O;
}

core::PipelineOptions
registry::reservoirRetrainOptions(const BenchmarkFactory &Factory,
                                  double Scale, size_t SampleSize,
                                  support::ThreadPool *Pool) {
  core::PipelineOptions O = Factory.defaultOptions(Scale);
  O.Pool = Pool;
  runtime::AdaptiveService::clampRetrainOptions(O, SampleSize);
  return O;
}

size_t registry::scaledInputCount(double Scale, size_t Base) {
  return std::max<size_t>(24, static_cast<size_t>(Base * Scale));
}

double registry::scaleFromEnv() {
  const char *Env = std::getenv("PBT_BENCH_SCALE");
  if (!Env)
    return 1.0;
  double Scale = std::atof(Env);
  if (Scale <= 0.0)
    return 1.0;
  return std::clamp(Scale, 0.1, 100.0);
}

static SuiteEntry makeEntry(const BenchmarkFactory &F, double Scale,
                            support::ThreadPool *Pool) {
  SuiteEntry E;
  E.Name = F.name();
  E.Program = F.makeProgram(Scale, F.defaultProgramSeed());
  E.Options = F.defaultOptions(Scale);
  E.Options.Pool = Pool;
  return E;
}

std::vector<SuiteEntry> registry::makeSuite(double Scale,
                                            support::ThreadPool *Pool) {
  std::vector<SuiteEntry> Suite;
  for (const BenchmarkFactory *F : BenchmarkRegistry::instance().all())
    Suite.push_back(makeEntry(*F, Scale, Pool));
  return Suite;
}

std::vector<SuiteEntry>
registry::makeSuite(const std::vector<std::string> &Names, double Scale,
                    support::ThreadPool *Pool) {
  std::vector<SuiteEntry> Suite;
  for (const std::string &Name : Names)
    Suite.push_back(
        makeEntry(BenchmarkRegistry::instance().get(Name), Scale, Pool));
  return Suite;
}

//===- registry/BenchmarkRegistry.h - Self-registering workload catalog ----==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Makes workloads first-class, enumerable objects. A BenchmarkFactory
/// knows how to instantiate one named benchmark (a TunableProgram) at a
/// given scale plus the pipeline options the paper's experiments use for
/// it; the BenchmarkRegistry is the process-wide catalog the factories
/// register themselves into at static-initialisation time.
///
/// Adding a workload is a one-file change: implement the TunableProgram,
/// then register it from the same .cpp with
///
///   static registry::RegisterBenchmark
///       Reg(std::make_unique<registry::SimpleBenchmarkFactory>(
///           "myworkload", "one-line description", /*SuiteOrder=*/1000,
///           /*ProgramSeed=*/42, /*PipelineSeed=*/4242,
///           [](double Scale, uint64_t Seed) -> ProgramPtr { ... }));
///
/// Every harness (pbt-bench subcommands, examples, tests) constructs
/// programs exclusively through this catalog, so nothing else needs
/// editing.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_REGISTRY_BENCHMARKREGISTRY_H
#define PBT_REGISTRY_BENCHMARKREGISTRY_H

#include "core/Pipeline.h"
#include "runtime/TunableProgram.h"
#include "support/ThreadPool.h"

#include <memory>
#include <string>
#include <vector>

namespace pbt {
namespace registry {

using ProgramPtr = std::unique_ptr<runtime::TunableProgram>;

/// Instantiates one named benchmark. \p Scale stretches input counts
/// towards the paper's original sizes (1.0 = laptop-scale defaults).
class BenchmarkFactory {
public:
  virtual ~BenchmarkFactory();

  /// Unique registry key, e.g. "sort1" or "helmholtz3d".
  virtual std::string name() const = 0;

  /// One-line human description for `pbt-bench list`.
  virtual std::string describe() const = 0;

  /// Position of this entry in the paper's standard suite (the Table 1
  /// row order); ties break by name. Workloads outside the paper's eight
  /// rows keep the default and sort alphabetically after them.
  virtual int suiteOrder() const { return 1000; }

  /// The input-generation seed the paper harness uses for this entry.
  virtual uint64_t defaultProgramSeed() const = 0;

  /// Builds the program with \p Seed driving input generation.
  virtual ProgramPtr makeProgram(double Scale, uint64_t Seed) const = 0;

  /// The pipeline options (landmark count, tuner budget, CV folds, ...)
  /// the paper's experiments use for this entry at \p Scale.
  virtual core::PipelineOptions defaultOptions(double Scale) const = 0;
};

/// Process-wide catalog of benchmark factories.
class BenchmarkRegistry {
public:
  static BenchmarkRegistry &instance();

  /// Registers \p Factory. Duplicate names are rejected (the first
  /// registration wins and the duplicate is dropped).
  void add(std::unique_ptr<BenchmarkFactory> Factory);

  /// All factories, ordered by (suiteOrder, name).
  std::vector<const BenchmarkFactory *> all() const;

  /// Registered names in the same order as all().
  std::vector<std::string> names() const;

  /// \returns the factory named \p Name, or nullptr when unknown.
  const BenchmarkFactory *lookup(const std::string &Name) const;

  /// Like lookup, but throws std::out_of_range naming the unknown key and
  /// the available ones.
  const BenchmarkFactory &get(const std::string &Name) const;

  size_t size() const { return Factories.size(); }

private:
  BenchmarkRegistry() = default;
  std::vector<std::unique_ptr<BenchmarkFactory>> Factories;
};

/// Registers a factory into BenchmarkRegistry::instance() at static-init
/// time; define one per workload in the workload's own .cpp.
class RegisterBenchmark {
public:
  explicit RegisterBenchmark(std::unique_ptr<BenchmarkFactory> Factory);
};

/// Covers the common case: a factory defined by constants plus a capture-
/// free maker function.
class SimpleBenchmarkFactory : public BenchmarkFactory {
public:
  using Maker = ProgramPtr (*)(double Scale, uint64_t Seed);

  SimpleBenchmarkFactory(std::string Name, std::string Description,
                         int SuiteOrder, uint64_t ProgramSeed,
                         uint64_t PipelineSeed, Maker Make);

  std::string name() const override { return Name; }
  std::string describe() const override { return Description; }
  int suiteOrder() const override { return Order; }
  uint64_t defaultProgramSeed() const override { return ProgramSeed; }
  ProgramPtr makeProgram(double Scale, uint64_t Seed) const override;
  core::PipelineOptions defaultOptions(double Scale) const override;

private:
  std::string Name;
  std::string Description;
  int Order;
  uint64_t ProgramSeed;
  uint64_t PipelineSeed;
  Maker Make;
};

/// The paper harness's shared pipeline defaults: landmark count scaling
/// with sqrt(Scale), the tuner budget, shallow trees, 50/50 split.
core::PipelineOptions paperPipelineOptions(double Scale, uint64_t PipelineSeed);

/// Pipeline options for (re)training on a live-traffic sample of
/// \p SampleSize inputs: the factory's defaults at \p Scale with the
/// landmark count, CV folds and tuning neighbourhood clamped to what the
/// sample supports, and \p Pool wired in. This is what the adaptive
/// serving loop (runtime/AdaptiveService.h) and the `pbt-bench stream`
/// harness hand to every shadow retrain.
core::PipelineOptions reservoirRetrainOptions(const BenchmarkFactory &Factory,
                                              double Scale, size_t SampleSize,
                                              support::ThreadPool *Pool);

/// Scales a base input count, clamped to a floor that keeps train/test
/// splits meaningful.
size_t scaledInputCount(double Scale, size_t Base);

/// Reads PBT_BENCH_SCALE (default 1.0, clamped to [0.1, 100]).
double scaleFromEnv();

/// One ready-to-train suite row (the former bench harness SuiteEntry).
struct SuiteEntry {
  std::string Name;
  ProgramPtr Program;
  core::PipelineOptions Options;
};

/// Builds the full registered suite in catalog order. \p Pool is wired
/// into every entry's PipelineOptions (may be null).
std::vector<SuiteEntry> makeSuite(double Scale, support::ThreadPool *Pool);

/// Builds the named subset, in the order given. Throws std::out_of_range
/// on unknown names.
std::vector<SuiteEntry> makeSuite(const std::vector<std::string> &Names,
                                  double Scale, support::ThreadPool *Pool);

} // namespace registry
} // namespace pbt

#endif // PBT_REGISTRY_BENCHMARKREGISTRY_H

//===- ml/MaxApriori.cpp ---------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/MaxApriori.h"

#include "ml/CompiledArena.h"
#include "serialize/TextFormat.h"

using namespace pbt;
using namespace pbt::ml;

void MaxApriori::compileInto(CompiledArena &, CompiledClassifier &Out) const {
  assert(Trained && "compileInto() before fit()/loadFrom()");
  Out.Kind = CompiledKind::MaxApriori;
  Out.Landmark = Mode;
}

void MaxApriori::saveTo(serialize::Writer &W) const {
  W.doubles("max-apriori", Priors);
}

bool MaxApriori::loadFrom(serialize::Reader &R) {
  std::vector<double> P;
  if (!R.doubles("max-apriori", P, 1u << 20))
    return false;
  if (P.empty())
    return R.fail("max-apriori needs at least one class");
  Priors = std::move(P);
  Mode = 0;
  for (unsigned I = 1; I < Priors.size(); ++I)
    if (Priors[I] > Priors[Mode])
      Mode = I;
  Trained = true;
  return true;
}

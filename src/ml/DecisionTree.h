//===- ml/DecisionTree.h - CART-style decision tree classifier -------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CART-style decision tree over continuous features with axis-aligned
/// threshold splits, Gini impurity, and optional cost-sensitive leaf
/// labelling. This is the workhorse of the paper's "Exhaustive Feature
/// Subsets" classifiers (Section 3.2, classifier family 2): one tree is
/// trained per feature subset, with the pipeline's cost matrix shaping the
/// leaf labels.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_DECISIONTREE_H
#define PBT_ML_DECISIONTREE_H

#include "linalg/Matrix.h"
#include "ml/CostMatrix.h"

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include <string>

namespace pbt {
namespace serialize {
class Writer;
class Reader;
} // namespace serialize
namespace ml {

struct CompiledArena;
struct CompiledClassifier;
class Dataset;
class PresortedView;

struct DecisionTreeOptions {
  unsigned MaxDepth = 12;
  unsigned MinSamplesLeaf = 2;
  unsigned MinSamplesSplit = 4;
  /// Candidate features; empty means all columns.
  std::vector<unsigned> AllowedFeatures;
  /// Optional cost matrix for leaf labelling (training-time splits still
  /// use Gini; leaves pick the expected-cost-minimising class).
  const CostMatrix *Costs = nullptr;
};

/// Binary classification/decision tree over dense double rows.
class DecisionTree {
public:
  /// Trains on rows of \p X with labels \p Y in [0, NumClasses).
  /// \p SampleIndices selects the training subset (empty = all rows).
  void fit(const linalg::Matrix &X, const std::vector<unsigned> &Y,
           unsigned NumClasses, const DecisionTreeOptions &Options = {},
           const std::vector<size_t> &SampleIndices = {});

  /// Trains over a columnar ml::Dataset through a presorted view: node
  /// sweeps walk the per-feature value-ordered row lists and the chosen
  /// split stably partitions them in place (SPRINT-style), so the build
  /// performs no sorting at all. Produces exactly the tree fit() would on
  /// the equivalent row-major inputs -- same splits, same node order,
  /// same serialized bytes (pinned by DatasetTest and the golden suite).
  /// \p Y holds one label per *global* dataset row; \p View's features
  /// are the split candidates (Options.AllowedFeatures is ignored here).
  /// \p View is consumed (its columns end up partitioned).
  void fit(const ml::Dataset &Data, const std::vector<unsigned> &Y,
           unsigned NumClasses, const DecisionTreeOptions &Options,
           ml::PresortedView &View);

  /// Predicted class for a dense feature row.
  unsigned predict(const std::vector<double> &Row) const;
  unsigned predict(const double *Row, size_t Width) const;

  /// Predicted class with lazy feature access: \p GetFeature(F) is invoked
  /// only for features on the root-to-leaf path, enabling per-input
  /// feature-extraction cost accounting in the production classifier.
  unsigned predictLazy(const std::function<double(unsigned)> &GetFeature) const;

  /// predictLazy without the std::function indirection: the hot training
  /// scorers instantiate this directly with a column reader. Identical
  /// arithmetic to predictLazy (which delegates here).
  template <class GetFn> unsigned predictWith(GetFn &&GetFeature) const {
    assert(trained() && "predictWith() before fit()");
    unsigned N = 0;
    while (!Nodes[N].IsLeaf) {
      const Node &Cur = Nodes[N];
      N = GetFeature(static_cast<unsigned>(Cur.Feature)) <= Cur.Threshold
              ? Cur.Left
              : Cur.Right;
    }
    return Nodes[N].Label;
  }

  /// Stable byte encoding of the fitted structure (nodes in emission
  /// order). Two trees with equal keys decide identically on every input,
  /// which is what the Level-2 zoo's fold evaluation cache keys on.
  std::string structuralKey() const;

  /// Features actually referenced by at least one internal node.
  std::vector<unsigned> usedFeatures() const;

  size_t numNodes() const { return Nodes.size(); }
  unsigned depth() const;
  bool trained() const { return !Nodes.empty(); }

  /// Serialization hooks for the model-persistence layer. loadFrom
  /// validates the structure (children strictly after their parent, so
  /// prediction terminates; features within bounds; leaf labels below
  /// \p NumClasses) and fails on anything inconsistent.
  void saveTo(serialize::Writer &W) const;
  bool loadFrom(serialize::Reader &R, unsigned NumClasses);

  /// Compile hook for the serving path: lowers the trained tree into
  /// \p A as struct-of-arrays node vectors (ml/CompiledArena.h).
  /// Decisions over the lowered form are bit-identical to predictLazy().
  void compileInto(CompiledArena &A, CompiledClassifier &Out) const;

private:
  struct Node {
    /// -1 for leaves.
    int Feature = -1;
    double Threshold = 0.0;
    /// Children indices (leaves: 0).
    unsigned Left = 0;
    unsigned Right = 0;
    /// Leaf label.
    unsigned Label = 0;
    bool IsLeaf = true;
  };

  unsigned build(const linalg::Matrix &X, const std::vector<unsigned> &Y,
                 unsigned NumClasses, const DecisionTreeOptions &Options,
                 std::vector<size_t> &Indices, size_t Begin, size_t End,
                 unsigned Depth,
                 std::vector<std::pair<double, unsigned>> &Scratch);
  unsigned buildPresorted(const ml::Dataset &Data,
                          const std::vector<unsigned> &Y, unsigned NumClasses,
                          const DecisionTreeOptions &Options,
                          ml::PresortedView &View, size_t Begin, size_t End,
                          unsigned Depth, std::vector<uint32_t> &Scratch);
  unsigned makeLeaf(const std::vector<double> &ClassCounts,
                    const DecisionTreeOptions &Options);

  std::vector<Node> Nodes;
  size_t NumFeatures = 0;
};

} // namespace ml
} // namespace pbt

#endif // PBT_ML_DECISIONTREE_H

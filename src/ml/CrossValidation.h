//===- ml/CrossValidation.h - K-fold splitting ------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// K-fold cross-validation index splitting. The paper trains the
/// exhaustive-subset decision trees with 10-fold cross validation "to
/// avoid any learning to the data"; the pipeline uses these splitters for
/// the same purpose (with a configurable fold count, since our training
/// sets are smaller).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_CROSSVALIDATION_H
#define PBT_ML_CROSSVALIDATION_H

#include "support/Random.h"

#include <cstddef>
#include <vector>

namespace pbt {
namespace ml {

/// One train/test split.
struct FoldSplit {
  std::vector<size_t> Train;
  std::vector<size_t> Test;
};

/// Shuffled K-fold split of [0, N). Every index appears in exactly one
/// test fold. Folds differ in size by at most one element. K is clamped
/// to [2, N] (N >= 2 required).
std::vector<FoldSplit> kFoldSplits(size_t N, unsigned K, support::Rng &Rng);

/// Stratified K-fold: class proportions are approximately preserved in
/// every fold. Labels must be < NumClasses.
std::vector<FoldSplit> stratifiedKFoldSplits(const std::vector<unsigned> &Y,
                                             unsigned NumClasses, unsigned K,
                                             support::Rng &Rng);

/// Deterministic train/test partition of [0, N) with the given train
/// fraction (shuffled first). Used for the paper's half-train/half-test
/// split of each benchmark's inputs.
FoldSplit trainTestSplit(size_t N, double TrainFraction, support::Rng &Rng);

/// Materialises fold positions into the ids they select from: Out[i] =
/// Rows[Positions[i]]. This is the composition step between a fold split
/// (positions within the training set) and the global row ids the
/// columnar Dataset views address; shared so every Level-2 consumer
/// gathers fold rows exactly once instead of per candidate.
std::vector<size_t> gatherRows(const std::vector<size_t> &Rows,
                               const std::vector<size_t> &Positions);

} // namespace ml
} // namespace pbt

#endif // PBT_ML_CROSSVALIDATION_H

//===- ml/IncrementalBayes.cpp ----------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/IncrementalBayes.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace pbt;
using namespace pbt::ml;

void IncrementalBayes::fit(const linalg::Matrix &X,
                           const std::vector<unsigned> &Y,
                           unsigned NumClassesIn,
                           const std::vector<unsigned> &FeatureOrder,
                           const IncrementalBayesOptions &Options,
                           const std::vector<size_t> &SampleIndices) {
  assert(X.rows() == Y.size() && "row/label count mismatch");
  assert(!FeatureOrder.empty() && "need at least one feature");
  NumClasses = NumClassesIn;
  Bins = std::max(2u, Options.Bins);
  PosteriorThreshold = Options.PosteriorThreshold;
  Order = FeatureOrder;

  std::vector<size_t> Indices;
  if (SampleIndices.empty()) {
    Indices.resize(X.rows());
    std::iota(Indices.begin(), Indices.end(), 0);
  } else {
    Indices = SampleIndices;
  }
  assert(!Indices.empty() && "cannot train on zero samples");

  // Priors with Laplace smoothing.
  Priors.assign(NumClasses, Options.Smoothing);
  for (size_t I : Indices) {
    assert(Y[I] < NumClasses && "label out of range");
    Priors[Y[I]] += 1.0;
  }
  double PriorTotal =
      static_cast<double>(Indices.size()) + Options.Smoothing * NumClasses;
  for (double &P : Priors)
    P /= PriorTotal;

  Edges.assign(Order.size(), {});
  LogProb.assign(Order.size(), {});
  std::vector<double> Values(Indices.size());

  for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
    unsigned F = Order[Pos];
    assert(F < X.cols() && "feature index out of range");
    for (size_t I = 0; I != Indices.size(); ++I)
      Values[I] = X.at(Indices[I], F);
    std::vector<double> SortedValues = Values;
    std::sort(SortedValues.begin(), SortedValues.end());

    // Quantile bin edges; duplicates collapse regions harmlessly.
    std::vector<double> E(Bins - 1);
    for (unsigned B = 0; B + 1 < Bins; ++B) {
      double Q = static_cast<double>(B + 1) / Bins;
      double PosF = Q * static_cast<double>(SortedValues.size() - 1);
      size_t Lo = static_cast<size_t>(PosF);
      size_t Hi = std::min(Lo + 1, SortedValues.size() - 1);
      double Frac = PosF - static_cast<double>(Lo);
      E[B] = SortedValues[Lo] * (1.0 - Frac) + SortedValues[Hi] * Frac;
    }
    Edges[Pos] = std::move(E);

    // Class-conditional region counts.
    std::vector<double> Counts(static_cast<size_t>(NumClasses) * Bins,
                               Options.Smoothing);
    for (size_t I = 0; I != Indices.size(); ++I) {
      unsigned R = regionOf(static_cast<unsigned>(Pos), Values[I]);
      Counts[static_cast<size_t>(Y[Indices[I]]) * Bins + R] += 1.0;
    }
    std::vector<double> LP(Counts.size());
    for (unsigned C = 0; C != NumClasses; ++C) {
      double Total = 0.0;
      for (unsigned B = 0; B != Bins; ++B)
        Total += Counts[static_cast<size_t>(C) * Bins + B];
      for (unsigned B = 0; B != Bins; ++B)
        LP[static_cast<size_t>(C) * Bins + B] =
            std::log(Counts[static_cast<size_t>(C) * Bins + B] / Total);
    }
    LogProb[Pos] = std::move(LP);
  }
}

unsigned IncrementalBayes::regionOf(unsigned OrderPos, double Value) const {
  const std::vector<double> &E = Edges[OrderPos];
  // Linear scan is fine: Bins is small (<= ~16).
  unsigned R = 0;
  while (R < E.size() && Value > E[R])
    ++R;
  return R;
}

IncrementalPrediction IncrementalBayes::predictLazy(
    const std::function<double(unsigned)> &GetFeature) const {
  assert(!Priors.empty() && "predict() before fit()");
  std::vector<double> LogPost(NumClasses);
  for (unsigned C = 0; C != NumClasses; ++C)
    LogPost[C] = std::log(std::max(Priors[C], 1e-300));

  IncrementalPrediction Out;
  for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
    double Value = GetFeature(Order[Pos]);
    ++Out.FeaturesUsed;
    unsigned R = regionOf(static_cast<unsigned>(Pos), Value);
    for (unsigned C = 0; C != NumClasses; ++C)
      LogPost[C] += LogProb[Pos][static_cast<size_t>(C) * Bins + R];

    // Normalised posterior of the current best class (Equation 1).
    double MaxLog = *std::max_element(LogPost.begin(), LogPost.end());
    double Z = 0.0;
    for (double L : LogPost)
      Z += std::exp(L - MaxLog);
    unsigned Best = static_cast<unsigned>(std::distance(
        LogPost.begin(), std::max_element(LogPost.begin(), LogPost.end())));
    double Posterior = std::exp(LogPost[Best] - MaxLog) / Z;
    Out.Label = Best;
    Out.Confidence = Posterior;
    if (Posterior > PosteriorThreshold)
      return Out; // Enough evidence; stop acquiring features.
  }
  return Out;
}

IncrementalPrediction
IncrementalBayes::predict(const std::vector<double> &Row) const {
  return predictLazy([&](unsigned F) {
    assert(F < Row.size() && "feature index out of range");
    return Row[F];
  });
}

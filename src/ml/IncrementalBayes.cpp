//===- ml/IncrementalBayes.cpp ----------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/IncrementalBayes.h"

#include "ml/CompiledArena.h"
#include "serialize/TextFormat.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace pbt;
using namespace pbt::ml;

void IncrementalBayes::fit(const linalg::Matrix &X,
                           const std::vector<unsigned> &Y,
                           unsigned NumClassesIn,
                           const std::vector<unsigned> &FeatureOrder,
                           const IncrementalBayesOptions &Options,
                           const std::vector<size_t> &SampleIndices) {
  assert(X.rows() == Y.size() && "row/label count mismatch");
  assert(!FeatureOrder.empty() && "need at least one feature");
  NumClasses = NumClassesIn;
  Bins = std::max(2u, Options.Bins);
  PosteriorThreshold = Options.PosteriorThreshold;
  Order = FeatureOrder;

  std::vector<size_t> Indices;
  if (SampleIndices.empty()) {
    Indices.resize(X.rows());
    std::iota(Indices.begin(), Indices.end(), 0);
  } else {
    Indices = SampleIndices;
  }
  assert(!Indices.empty() && "cannot train on zero samples");

  // Priors with Laplace smoothing.
  Priors.assign(NumClasses, Options.Smoothing);
  for (size_t I : Indices) {
    assert(Y[I] < NumClasses && "label out of range");
    Priors[Y[I]] += 1.0;
  }
  double PriorTotal =
      static_cast<double>(Indices.size()) + Options.Smoothing * NumClasses;
  for (double &P : Priors)
    P /= PriorTotal;

  Edges.assign(Order.size(), {});
  LogProb.assign(Order.size(), {});
  std::vector<double> Values(Indices.size());

  for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
    unsigned F = Order[Pos];
    assert(F < X.cols() && "feature index out of range");
    for (size_t I = 0; I != Indices.size(); ++I)
      Values[I] = X.at(Indices[I], F);
    std::vector<double> SortedValues = Values;
    std::sort(SortedValues.begin(), SortedValues.end());

    // Quantile bin edges; duplicates collapse regions harmlessly.
    std::vector<double> E(Bins - 1);
    for (unsigned B = 0; B + 1 < Bins; ++B) {
      double Q = static_cast<double>(B + 1) / Bins;
      double PosF = Q * static_cast<double>(SortedValues.size() - 1);
      size_t Lo = static_cast<size_t>(PosF);
      size_t Hi = std::min(Lo + 1, SortedValues.size() - 1);
      double Frac = PosF - static_cast<double>(Lo);
      E[B] = SortedValues[Lo] * (1.0 - Frac) + SortedValues[Hi] * Frac;
    }
    Edges[Pos] = std::move(E);

    // Class-conditional region counts.
    std::vector<double> Counts(static_cast<size_t>(NumClasses) * Bins,
                               Options.Smoothing);
    for (size_t I = 0; I != Indices.size(); ++I) {
      unsigned R = regionOf(static_cast<unsigned>(Pos), Values[I]);
      Counts[static_cast<size_t>(Y[Indices[I]]) * Bins + R] += 1.0;
    }
    std::vector<double> LP(Counts.size());
    for (unsigned C = 0; C != NumClasses; ++C) {
      double Total = 0.0;
      for (unsigned B = 0; B != Bins; ++B)
        Total += Counts[static_cast<size_t>(C) * Bins + B];
      for (unsigned B = 0; B != Bins; ++B)
        LP[static_cast<size_t>(C) * Bins + B] =
            std::log(Counts[static_cast<size_t>(C) * Bins + B] / Total);
    }
    LogProb[Pos] = std::move(LP);
  }
}

unsigned IncrementalBayes::regionOf(unsigned OrderPos, double Value) const {
  const std::vector<double> &E = Edges[OrderPos];
  // Linear scan is fine: Bins is small (<= ~16).
  unsigned R = 0;
  while (R < E.size() && Value > E[R])
    ++R;
  return R;
}

IncrementalPrediction IncrementalBayes::predictLazy(
    const std::function<double(unsigned)> &GetFeature) const {
  return predictWith(GetFeature);
}

IncrementalPrediction
IncrementalBayes::predict(const std::vector<double> &Row) const {
  return predictLazy([&](unsigned F) {
    assert(F < Row.size() && "feature index out of range");
    return Row[F];
  });
}

void IncrementalBayes::compileInto(CompiledArena &A,
                                   CompiledClassifier &Out) const {
  assert(trained() && "compileInto() before fit()/loadFrom()");
  Out.Kind = CompiledKind::Bayes;
  Out.OrderLen = static_cast<uint32_t>(Order.size());
  Out.Bins = Bins;
  Out.Classes = NumClasses;
  Out.PosteriorThreshold = PosteriorThreshold;

  std::vector<int32_t> O(Order.begin(), Order.end());
  Out.OrderBase = A.appendI32(O.data(), O.size());

  Out.EdgeBase = static_cast<uint32_t>(A.F64.size());
  for (const std::vector<double> &E : Edges) {
    assert(E.size() == Bins - 1 && "edge table shape mismatch");
    A.appendF64(E.data(), E.size());
  }
  Out.LogProbBase = static_cast<uint32_t>(A.F64.size());
  for (const std::vector<double> &LP : LogProb) {
    assert(LP.size() == static_cast<size_t>(NumClasses) * Bins &&
           "log-prob table shape mismatch");
    A.appendF64(LP.data(), LP.size());
  }
  // predictLazy starts from log(max(prior, 1e-300)); precompute the exact
  // same values once so the per-decision loop begins with plain loads.
  std::vector<double> LogPriors(Priors.size());
  for (size_t C = 0; C != Priors.size(); ++C)
    LogPriors[C] = std::log(std::max(Priors[C], 1e-300));
  Out.LogPriorBase = A.appendF64(LogPriors.data(), LogPriors.size());
}

void IncrementalBayes::saveTo(serialize::Writer &W) const {
  W.key("incremental-bayes")
      .u64(NumClasses)
      .u64(Bins)
      .f(PosteriorThreshold)
      .u64(Order.size())
      .end();
  std::vector<uint64_t> O(Order.begin(), Order.end());
  W.u64s("order", O);
  for (const std::vector<double> &E : Edges)
    W.doubles("edges", E);
  for (const std::vector<double> &LP : LogProb)
    W.doubles("logprob", LP);
  W.doubles("priors", Priors);
}

bool IncrementalBayes::loadFrom(serialize::Reader &R, unsigned NumFeatures) {
  if (!R.expect("incremental-bayes"))
    return false;
  uint64_t Classes = R.count(1u << 20);
  uint64_t B = R.count(1u << 12);
  double Threshold = R.f();
  uint64_t Len = R.count(1u << 20);
  if (!R.endLine())
    return false;
  if (B < 2)
    return R.fail("incremental-bayes needs at least 2 bins");
  if (Classes == 0 || Len == 0)
    return R.fail("incremental-bayes needs classes and ordered features");
  std::vector<uint64_t> O;
  if (!R.u64s("order", O, Len))
    return false;
  if (O.size() != Len)
    return R.fail("feature order length mismatch");
  for (uint64_t F : O)
    if (F >= NumFeatures)
      return R.fail("ordered feature index out of range");
  std::vector<std::vector<double>> E(Len), LP(Len);
  for (uint64_t I = 0; I != Len && R.ok(); ++I) {
    if (!R.doubles("edges", E[I], B - 1))
      return false;
    if (E[I].size() != B - 1)
      return R.fail("edge count mismatch");
  }
  for (uint64_t I = 0; I != Len && R.ok(); ++I) {
    if (!R.doubles("logprob", LP[I], Classes * B))
      return false;
    if (LP[I].size() != Classes * B)
      return R.fail("log-prob table size mismatch");
  }
  std::vector<double> P;
  if (!R.doubles("priors", P, Classes))
    return false;
  if (P.size() != Classes)
    return R.fail("prior count mismatch");
  NumClasses = static_cast<unsigned>(Classes);
  Bins = static_cast<unsigned>(B);
  PosteriorThreshold = Threshold;
  Order.assign(O.begin(), O.end());
  Edges = std::move(E);
  LogProb = std::move(LP);
  Priors = std::move(P);
  return true;
}

//===- ml/CostMatrix.h - Misclassification cost matrices -------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost matrix for cost-sensitive classification. C(i, j) is the cost of
/// predicting class j for an instance whose true class is i. The two-level
/// pipeline builds it from measured landmark performance (paper Section
/// 3.2, "Setting Up the Cost Matrix"): a performance-difference term plus
/// an accuracy-violation penalty blended with eta = 0.5.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_COSTMATRIX_H
#define PBT_ML_COSTMATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace pbt {
namespace serialize {
class Writer;
class Reader;
} // namespace serialize
namespace ml {

/// Square misclassification cost matrix with zero diagonal by convention
/// of its builders (not enforced; asymmetric costs are the point).
class CostMatrix {
public:
  CostMatrix() = default;
  explicit CostMatrix(unsigned NumClasses)
      : K(NumClasses), C(static_cast<size_t>(NumClasses) * NumClasses, 0.0) {}

  unsigned numClasses() const { return K; }
  bool empty() const { return K == 0; }

  double at(unsigned TrueClass, unsigned Predicted) const {
    assert(TrueClass < K && Predicted < K && "class out of range");
    return C[static_cast<size_t>(TrueClass) * K + Predicted];
  }
  double &at(unsigned TrueClass, unsigned Predicted) {
    assert(TrueClass < K && Predicted < K && "class out of range");
    return C[static_cast<size_t>(TrueClass) * K + Predicted];
  }

  /// 0/1 loss: cost 1 for every misprediction.
  static CostMatrix zeroOne(unsigned NumClasses) {
    CostMatrix M(NumClasses);
    for (unsigned I = 0; I != NumClasses; ++I)
      for (unsigned J = 0; J != NumClasses; ++J)
        M.at(I, J) = I == J ? 0.0 : 1.0;
    return M;
  }

  /// The prediction minimising expected cost against class counts
  /// \p ClassCounts (size K).
  unsigned cheapestPrediction(const std::vector<double> &ClassCounts) const {
    assert(ClassCounts.size() == K && "class count size mismatch");
    unsigned Best = 0;
    double BestCost = expectedCost(ClassCounts, 0);
    for (unsigned J = 1; J < K; ++J) {
      double Cost = expectedCost(ClassCounts, J);
      if (Cost < BestCost) {
        BestCost = Cost;
        Best = J;
      }
    }
    return Best;
  }

  /// Total cost of predicting \p Predicted against \p ClassCounts.
  double expectedCost(const std::vector<double> &ClassCounts,
                      unsigned Predicted) const {
    double Sum = 0.0;
    for (unsigned I = 0; I != K; ++I)
      Sum += ClassCounts[I] * at(I, Predicted);
    return Sum;
  }

  /// Serialization hooks for the model-persistence layer.
  void saveTo(serialize::Writer &W) const;
  bool loadFrom(serialize::Reader &R);

private:
  unsigned K = 0;
  std::vector<double> C;
};

} // namespace ml
} // namespace pbt

#endif // PBT_ML_COSTMATRIX_H

//===- ml/Dataset.cpp -------------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"

#include <algorithm>
#include <numeric>

using namespace pbt;
using namespace pbt::ml;

Dataset::Dataset(const linalg::Matrix &Features,
                 const linalg::Matrix &ExtractCosts,
                 const linalg::Matrix &Time, const linalg::Matrix &Acc,
                 std::optional<double> AccuracyThreshold) {
  assert(Features.rows() == ExtractCosts.rows() &&
         Features.cols() == ExtractCosts.cols() &&
         "feature/cost table mismatch");
  assert(Time.rows() == Features.rows() && Acc.rows() == Time.rows() &&
         Acc.cols() == Time.cols() && "time/acc table mismatch");
  Rows = Features.rows();
  NumF = static_cast<unsigned>(Features.cols());
  NumC = static_cast<unsigned>(Time.cols());

  FeatCols.resize(static_cast<size_t>(NumF) * Rows);
  CostCols.resize(static_cast<size_t>(NumF) * Rows);
  for (unsigned F = 0; F != NumF; ++F) {
    double *FC = FeatCols.data() + static_cast<size_t>(F) * Rows;
    double *CC = CostCols.data() + static_cast<size_t>(F) * Rows;
    for (size_t R = 0; R != Rows; ++R) {
      FC[R] = Features.at(R, F);
      CC[R] = ExtractCosts.at(R, F);
    }
  }
  TimeCols.resize(static_cast<size_t>(NumC) * Rows);
  MeetsBits.resize(static_cast<size_t>(NumC) * Rows);
  for (unsigned L = 0; L != NumC; ++L) {
    double *TC = TimeCols.data() + static_cast<size_t>(L) * Rows;
    uint8_t *MB = MeetsBits.data() + static_cast<size_t>(L) * Rows;
    for (size_t R = 0; R != Rows; ++R) {
      TC[R] = Time.at(R, L);
      MB[R] = !AccuracyThreshold || Acc.at(R, L) >= *AccuracyThreshold ? 1 : 0;
    }
  }

  // The global presorted-feature index: each column argsorted once, ties
  // by row id (a total order, so the index is unique and reproducible).
  SortedIdx.resize(static_cast<size_t>(NumF) * Rows);
  for (unsigned F = 0; F != NumF; ++F) {
    uint32_t *Idx = SortedIdx.data() + static_cast<size_t>(F) * Rows;
    std::iota(Idx, Idx + Rows, 0u);
    const double *FC = featureCol(F);
    std::sort(Idx, Idx + Rows, [FC](uint32_t A, uint32_t B) {
      if (FC[A] != FC[B])
        return FC[A] < FC[B];
      return A < B;
    });
  }
}

RowView RowView::all(const Dataset &D) {
  std::vector<uint32_t> Ids(D.numRows());
  std::iota(Ids.begin(), Ids.end(), 0u);
  return RowView(D, std::move(Ids));
}

RowView RowView::of(const Dataset &D, const std::vector<size_t> &RowIds) {
  std::vector<uint32_t> Ids;
  Ids.reserve(RowIds.size());
  for (size_t R : RowIds)
    Ids.push_back(static_cast<uint32_t>(R));
  return RowView(D, std::move(Ids));
}

RowView RowView::subset(const std::vector<size_t> &Positions) const {
  assert(D && "empty view");
  std::vector<uint32_t> Sub;
  Sub.reserve(Positions.size());
  for (size_t P : Positions) {
    assert(P < Ids.size() && "position out of range");
    Sub.push_back(Ids[P]);
  }
  return RowView(*D, std::move(Sub));
}

PresortedBase::PresortedBase(const Dataset &D,
                             const std::vector<size_t> &RowIds)
    : D(&D), N(RowIds.size()) {
  std::vector<uint32_t> Ids;
  Ids.reserve(RowIds.size());
  for (size_t R : RowIds)
    Ids.push_back(static_cast<uint32_t>(R));
  build(Ids);
}

PresortedBase::PresortedBase(const Dataset &D, const RowView &View)
    : D(&D), N(View.size()) {
  build(View.rows());
}

void PresortedBase::build(const std::vector<uint32_t> &RowIds) {
  // Membership stamp over the full table, then one filtering pass of the
  // global presorted index per feature: the subset's rows come out in
  // (value, row-id) order without any sorting.
  size_t Total = D->numRows();
  unsigned M = D->numFeatures();
  std::vector<uint8_t> InSet(Total, 0);
  for (uint32_t R : RowIds) {
    assert(R < Total && "row id out of range");
    InSet[R] = 1;
  }
  Cols.resize(static_cast<size_t>(M) * N);
  for (unsigned F = 0; F != M; ++F) {
    const uint32_t *Global = D->sortedRows(F);
    uint32_t *Out = Cols.data() + static_cast<size_t>(F) * N;
    size_t W = 0;
    for (size_t I = 0; I != Total; ++I) {
      uint32_t R = Global[I];
      if (InSet[R])
        Out[W++] = R;
    }
    assert(W == N && "membership filter lost rows (duplicate row ids?)");
    (void)W;
  }
}

PresortedView::PresortedView(const PresortedBase &Base,
                             const std::vector<unsigned> &Features)
    : D(&Base.dataset()), N(Base.size()) {
  if (Features.empty()) {
    Feats.resize(D->numFeatures());
    std::iota(Feats.begin(), Feats.end(), 0u);
  } else {
    Feats = Features;
  }
  Cols.resize(Feats.size() * N);
  for (size_t CI = 0; CI != Feats.size(); ++CI)
    std::copy(Base.column(Feats[CI]), Base.column(Feats[CI]) + N,
              Cols.data() + CI * N);
}

//===- ml/Normalizer.cpp ---------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/Normalizer.h"

#include "ml/CompiledArena.h"
#include "serialize/TextFormat.h"

#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::ml;

void Normalizer::fit(const linalg::Matrix &X) {
  size_t N = X.rows(), D = X.cols();
  assert(N > 0 && "cannot fit a normalizer on an empty matrix");
  Mean.assign(D, 0.0);
  Std.assign(D, 0.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != D; ++J)
      Mean[J] += X.at(I, J);
  for (size_t J = 0; J != D; ++J)
    Mean[J] /= static_cast<double>(N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != D; ++J) {
      double Delta = X.at(I, J) - Mean[J];
      Std[J] += Delta * Delta;
    }
  for (size_t J = 0; J != D; ++J)
    Std[J] = std::sqrt(Std[J] / static_cast<double>(N));
}

linalg::Matrix Normalizer::transform(const linalg::Matrix &X) const {
  assert(X.cols() == Mean.size() && "column count mismatch");
  linalg::Matrix Out(X.rows(), X.cols());
  for (size_t I = 0; I != X.rows(); ++I)
    for (size_t J = 0; J != X.cols(); ++J)
      Out.at(I, J) =
          Std[J] > 1e-12 ? (X.at(I, J) - Mean[J]) / Std[J] : 0.0;
  return Out;
}

void Normalizer::transformRow(std::vector<double> &Row) const {
  assert(Row.size() == Mean.size() && "column count mismatch");
  for (size_t J = 0; J != Row.size(); ++J)
    Row[J] = Std[J] > 1e-12 ? (Row[J] - Mean[J]) / Std[J] : 0.0;
}

uint32_t Normalizer::compileInto(CompiledArena &A) const {
  std::vector<double> Pairs(2 * Mean.size());
  for (size_t J = 0; J != Mean.size(); ++J) {
    Pairs[2 * J] = Mean[J];
    // transformRow's zero-variance rule (Std <= 1e-12 maps to 0) becomes
    // a sentinel scale, keeping the served transform bit-identical while
    // hoisting the epsilon comparison out of the hot loop.
    Pairs[2 * J + 1] = Std[J] > 1e-12 ? Std[J] : 0.0;
  }
  return A.appendF64(Pairs.data(), Pairs.size());
}

void Normalizer::saveTo(serialize::Writer &W) const {
  W.key("normalizer").u64(Mean.size()).end();
  W.doubles("mean", Mean);
  W.doubles("std", Std);
}

bool Normalizer::loadFrom(serialize::Reader &R) {
  if (!R.expect("normalizer"))
    return false;
  uint64_t D = R.count(1u << 20);
  if (!R.endLine())
    return false;
  std::vector<double> M, S;
  if (!R.doubles("mean", M, D) || !R.doubles("std", S, D))
    return false;
  if (M.size() != D || S.size() != D)
    return R.fail("normalizer mean/std length mismatch");
  Mean = std::move(M);
  Std = std::move(S);
  return true;
}

//===- ml/KMeans.cpp -------------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/KMeans.h"

#include "serialize/TextFormat.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace pbt;
using namespace pbt::ml;

static double squaredDistance(const double *A, const double *B, size_t D) {
  double Sum = 0.0;
  for (size_t I = 0; I != D; ++I) {
    double Delta = A[I] - B[I];
    Sum += Delta * Delta;
  }
  return Sum;
}

/// Partial-distance variant: bails out as soon as the running sum reaches
/// \p Bound. This is exact with respect to "is the full distance < Bound":
/// the terms are non-negative, so an early return only happens when the
/// full sum could not beat Bound either; and when the loop completes, the
/// additions are the same, in the same order, as squaredDistance -- so
/// argmin decisions (and the winning distance's bits) never change.
static double squaredDistanceBounded(const double *A, const double *B,
                                     size_t D, double Bound) {
  double Sum = 0.0;
  for (size_t I = 0; I != D; ++I) {
    double Delta = A[I] - B[I];
    Sum += Delta * Delta;
    if (Sum >= Bound)
      return Sum;
  }
  return Sum;
}

/// Chooses K initial centroids according to the requested strategy.
static linalg::Matrix initCentroids(const linalg::Matrix &Points, unsigned K,
                                    KMeansInit Init, support::Rng &Rng,
                                    support::CostCounter *Cost) {
  size_t N = Points.rows(), D = Points.cols();
  linalg::Matrix C(K, D);
  auto CopyPoint = [&](size_t From, size_t To) {
    for (size_t J = 0; J != D; ++J)
      C.at(To, J) = Points.at(From, J);
  };

  switch (Init) {
  case KMeansInit::Prefix:
    for (unsigned I = 0; I != K; ++I)
      CopyPoint(I % N, I);
    break;
  case KMeansInit::Random: {
    std::vector<size_t> Picks = Rng.sampleWithoutReplacement(N, std::min<size_t>(K, N));
    for (unsigned I = 0; I != K; ++I)
      CopyPoint(Picks[I % Picks.size()], I);
    break;
  }
  case KMeansInit::CenterPlus: {
    // kmeans++: first centroid uniform, then D^2 weighting.
    std::vector<double> Dist2(N, std::numeric_limits<double>::max());
    size_t First = Rng.index(N);
    CopyPoint(First, 0);
    for (unsigned Next = 1; Next < K; ++Next) {
      double Total = 0.0;
      for (size_t I = 0; I != N; ++I) {
        double D2 = squaredDistance(Points.rowPtr(I), C.rowPtr(Next - 1), D);
        Dist2[I] = std::min(Dist2[I], D2);
        Total += Dist2[I];
      }
      if (Cost)
        Cost->addFlops(2.0 * static_cast<double>(N) * static_cast<double>(D));
      if (Total <= 0.0) {
        // All remaining points coincide with chosen centroids.
        CopyPoint(Rng.index(N), Next);
        continue;
      }
      double Target = Rng.uniform() * Total;
      size_t Chosen = N - 1;
      double Acc = 0.0;
      for (size_t I = 0; I != N; ++I) {
        Acc += Dist2[I];
        if (Acc >= Target) {
          Chosen = I;
          break;
        }
      }
      CopyPoint(Chosen, Next);
    }
    break;
  }
  }
  return C;
}

KMeansResult ml::kMeans(const linalg::Matrix &Points,
                        const KMeansOptions &Options,
                        support::CostCounter *Cost) {
  size_t N = Points.rows(), D = Points.cols();
  assert(N > 0 && "kMeans needs at least one point");
  unsigned K = std::max(1u, std::min<unsigned>(Options.K,
                                               static_cast<unsigned>(N)));
  support::Rng Rng(Options.Seed);

  KMeansResult R;
  R.Centroids = initCentroids(Points, K, Options.Init, Rng, Cost);
  R.Assignment.assign(N, 0);

  // Buffers reused across iterations *and across calls*: the accumulator
  // matrix swaps with the centroid matrix instead of being reallocated
  // every pass, and both it and the cluster-size vector persist per
  // thread -- the adaptive loop retrains (and the clustering benchmark
  // runs) K-means thousands of times, and the per-call allocation churn
  // showed up under the drift-response profile. Both buffers are fully
  // overwritten below, so reuse is invisible to results.
  thread_local std::vector<double> ClusterSizeTL;
  thread_local linalg::Matrix NewCTL;
  std::vector<double> &ClusterSize = ClusterSizeTL;
  ClusterSize.assign(K, 0.0);
  if (NewCTL.rows() != K || NewCTL.cols() != D)
    NewCTL = linalg::Matrix(K, D, 0.0);
  linalg::Matrix &NewC = NewCTL;
  for (unsigned Iter = 0; Iter != std::max(1u, Options.MaxIterations);
       ++Iter) {
    R.IterationsRun = Iter + 1;
    // Assignment step. The partial-distance early exit skips tail
    // dimensions of centroids that already lost; the charged flops stay
    // the nominal 2*N*K*D of the deterministic cost model (the *model*
    // of this kernel's work must not depend on a wall-clock
    // optimisation, or every trained system downstream would drift).
    bool Changed = false;
    for (size_t I = 0; I != N; ++I) {
      double Best = std::numeric_limits<double>::max();
      unsigned BestK = 0;
      for (unsigned C = 0; C != K; ++C) {
        double D2 = squaredDistanceBounded(Points.rowPtr(I),
                                           R.Centroids.rowPtr(C), D, Best);
        if (D2 < Best) {
          Best = D2;
          BestK = C;
        }
      }
      if (R.Assignment[I] != BestK) {
        R.Assignment[I] = BestK;
        Changed = true;
      }
    }
    if (Cost)
      Cost->addFlops(2.0 * static_cast<double>(N) * static_cast<double>(K) *
                     static_cast<double>(D));

    // Update step.
    std::fill(NewC.data().begin(), NewC.data().end(), 0.0);
    std::fill(ClusterSize.begin(), ClusterSize.end(), 0.0);
    for (size_t I = 0; I != N; ++I) {
      unsigned C = R.Assignment[I];
      ClusterSize[C] += 1.0;
      for (size_t J = 0; J != D; ++J)
        NewC.at(C, J) += Points.at(I, J);
    }
    for (unsigned C = 0; C != K; ++C) {
      if (ClusterSize[C] == 0.0) {
        // Re-seed an empty cluster with the point farthest from its current
        // centroid, the standard fixup.
        size_t Farthest = 0;
        double Best = -1.0;
        for (size_t I = 0; I != N; ++I) {
          double D2 = squaredDistance(
              Points.rowPtr(I), R.Centroids.rowPtr(R.Assignment[I]), D);
          if (D2 > Best) {
            Best = D2;
            Farthest = I;
          }
        }
        for (size_t J = 0; J != D; ++J)
          NewC.at(C, J) = Points.at(Farthest, J);
        continue;
      }
      for (size_t J = 0; J != D; ++J)
        NewC.at(C, J) /= ClusterSize[C];
    }
    if (Cost)
      Cost->addFlops(static_cast<double>(N) * static_cast<double>(D));
    std::swap(R.Centroids, NewC);

    if (Options.EarlyStop && !Changed && Iter > 0)
      break;
  }

  // Final inertia (and assignment consistent with final centroids). The
  // bounded distance is safe here too: the winning centroid's distance is
  // always fully summed (it was < Best when computed), so Inertia's bits
  // match the unbounded computation.
  R.Inertia = 0.0;
  for (size_t I = 0; I != N; ++I) {
    double Best = std::numeric_limits<double>::max();
    unsigned BestK = 0;
    for (unsigned C = 0; C != K; ++C) {
      double D2 = squaredDistanceBounded(Points.rowPtr(I),
                                         R.Centroids.rowPtr(C), D, Best);
      if (D2 < Best) {
        Best = D2;
        BestK = C;
      }
    }
    R.Assignment[I] = BestK;
    R.Inertia += Best;
  }
  if (Cost)
    Cost->addFlops(2.0 * static_cast<double>(N) * static_cast<double>(K) *
                   static_cast<double>(D));
  return R;
}

unsigned ml::nearestCentroid(const linalg::Matrix &Centroids,
                             const std::vector<double> &Row) {
  assert(Centroids.rows() > 0 && Centroids.cols() == Row.size() &&
         "centroid/row mismatch");
  double Best = std::numeric_limits<double>::max();
  unsigned BestK = 0;
  for (size_t C = 0; C != Centroids.rows(); ++C) {
    double D2 = squaredDistance(Centroids.rowPtr(C), Row.data(), Row.size());
    if (D2 < Best) {
      Best = D2;
      BestK = static_cast<unsigned>(C);
    }
  }
  return BestK;
}

void ml::saveKMeansResult(serialize::Writer &W, const KMeansResult &Result) {
  W.key("kmeans")
      .f(Result.Inertia)
      .u64(Result.IterationsRun)
      .end();
  W.matrix("centroids", Result.Centroids);
  std::vector<uint64_t> A(Result.Assignment.begin(), Result.Assignment.end());
  W.u64s("assignment", A);
}

bool ml::loadKMeansResult(serialize::Reader &R, KMeansResult &Result) {
  if (!R.expect("kmeans"))
    return false;
  double Inertia = R.f();
  uint64_t Iterations = R.count(1u << 30);
  if (!R.endLine())
    return false;
  linalg::Matrix Centroids;
  if (!R.matrix("centroids", Centroids))
    return false;
  std::vector<uint64_t> A;
  if (!R.u64s("assignment", A, 1u << 24))
    return false;
  for (uint64_t C : A)
    if (C >= Centroids.rows())
      return R.fail("assignment refers to a missing centroid");
  Result.Centroids = std::move(Centroids);
  Result.Assignment.assign(A.begin(), A.end());
  Result.Inertia = Inertia;
  Result.IterationsRun = static_cast<unsigned>(Iterations);
  return true;
}

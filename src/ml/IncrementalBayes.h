//===- ml/IncrementalBayes.h - Incremental feature examination --------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's classifier family (4): "Incremental Feature Examination".
/// Each feature is discretised into decision regions; class-conditional
/// region probabilities are estimated from training data. At prediction
/// time features are acquired one at a time (cheapest first, in the order
/// the caller supplies) and the class posterior is updated after each; as
/// soon as some class exceeds a posterior threshold the classifier commits.
/// This gives per-input variable feature-extraction cost.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_INCREMENTALBAYES_H
#define PBT_ML_INCREMENTALBAYES_H

#include "linalg/Matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <vector>

namespace pbt {
namespace serialize {
class Writer;
class Reader;
} // namespace serialize
namespace ml {

struct CompiledArena;
struct CompiledClassifier;

struct IncrementalBayesOptions {
  /// Number of decision regions (quantile bins) per feature.
  unsigned Bins = 8;
  /// Posterior confidence needed to stop acquiring features.
  double PosteriorThreshold = 0.75;
  /// Laplace smoothing constant for region counts.
  double Smoothing = 1.0;
};

/// Result of an incremental prediction.
struct IncrementalPrediction {
  unsigned Label = 0;
  /// How many features (in acquisition order) were actually extracted.
  unsigned FeaturesUsed = 0;
  /// Posterior of the chosen label at stopping time.
  double Confidence = 0.0;
};

/// Naive-Bayes-over-decision-regions classifier with sequential feature
/// acquisition.
class IncrementalBayes {
public:
  /// Trains on rows of \p X restricted to \p FeatureOrder (the acquisition
  /// order, typically cheapest-extraction-first). Labels in [0, NumClasses).
  void fit(const linalg::Matrix &X, const std::vector<unsigned> &Y,
           unsigned NumClasses, const std::vector<unsigned> &FeatureOrder,
           const IncrementalBayesOptions &Options = {},
           const std::vector<size_t> &SampleIndices = {});

  /// Predicts with lazy feature access: \p GetFeature(F) returns the value
  /// of (original-space) feature F and is invoked only for features that
  /// are actually examined.
  IncrementalPrediction
  predictLazy(const std::function<double(unsigned)> &GetFeature) const;

  /// predictLazy without the std::function indirection: the hot training
  /// scorers instantiate this directly with a column reader. This is the
  /// one implementation of the prediction arithmetic; predictLazy
  /// delegates here.
  template <class GetFn>
  IncrementalPrediction predictWith(GetFn &&GetFeature) const {
    assert(!Priors.empty() && "predict() before fit()");
    std::vector<double> LogPost(NumClasses);
    for (unsigned C = 0; C != NumClasses; ++C)
      LogPost[C] = std::log(std::max(Priors[C], 1e-300));

    IncrementalPrediction Out;
    for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
      double Value = GetFeature(Order[Pos]);
      ++Out.FeaturesUsed;
      unsigned R = regionOf(static_cast<unsigned>(Pos), Value);
      for (unsigned C = 0; C != NumClasses; ++C)
        LogPost[C] += LogProb[Pos][static_cast<size_t>(C) * Bins + R];

      // Normalised posterior of the current best class (Equation 1).
      double MaxLog = *std::max_element(LogPost.begin(), LogPost.end());
      double Z = 0.0;
      for (double L : LogPost)
        Z += std::exp(L - MaxLog);
      unsigned Best = static_cast<unsigned>(std::distance(
          LogPost.begin(), std::max_element(LogPost.begin(), LogPost.end())));
      double Posterior = std::exp(LogPost[Best] - MaxLog) / Z;
      Out.Label = Best;
      Out.Confidence = Posterior;
      if (Posterior > PosteriorThreshold)
        return Out; // Enough evidence; stop acquiring features.
    }
    return Out;
  }

  /// Dense-row convenience wrapper.
  IncrementalPrediction predict(const std::vector<double> &Row) const;

  const std::vector<unsigned> &featureOrder() const { return Order; }
  unsigned numClasses() const { return NumClasses; }
  bool trained() const { return !Order.empty() || !Priors.empty(); }

  /// Serialization hooks for the model-persistence layer. loadFrom
  /// validates shapes (edges/log-prob tables sized by bins and classes)
  /// and that every acquired feature index is below \p NumFeatures.
  void saveTo(serialize::Writer &W) const;
  bool loadFrom(serialize::Reader &R, unsigned NumFeatures);

  /// Compile hook for the serving path: flattens the acquisition order,
  /// the per-position quantile edges, and the log-probability tables into
  /// \p A, pre-logging the priors so a decision needs no setup work.
  /// Decisions over the lowered form are bit-identical to predictLazy().
  void compileInto(CompiledArena &A, CompiledClassifier &Out) const;

private:
  unsigned regionOf(unsigned OrderPos, double Value) const;

  std::vector<unsigned> Order;
  /// Bin edges per ordered feature: Edges[pos] has Bins-1 thresholds.
  std::vector<std::vector<double>> Edges;
  /// Log P(region | class) per ordered feature: LogProb[pos][class*Bins+r].
  std::vector<std::vector<double>> LogProb;
  std::vector<double> Priors; // P(class)
  unsigned NumClasses = 0;
  unsigned Bins = 0;
  double PosteriorThreshold = 0.75;
};

} // namespace ml
} // namespace pbt

#endif // PBT_ML_INCREMENTALBAYES_H

//===- ml/KMeans.h - K-means clustering ------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lloyd's K-means with three initialisation strategies. This single
/// implementation serves two distinct roles in the reproduction:
///
///   1. Level-1 input-space clustering of the two-level learning pipeline
///      (paper Section 3.1, Step 2), and
///   2. the *clustering benchmark itself* (paper Section 4.1), whose
///      algorithmic choices are exactly the initialisation strategy
///      (random / prefix / centerplus), the cluster count k, and the
///      iteration budget -- hence the optional CostCounter and iteration
///      cap, which let the autotuner trade accuracy for time.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_KMEANS_H
#define PBT_ML_KMEANS_H

#include "linalg/Matrix.h"
#include "support/Random.h"

#include <vector>

namespace pbt {
namespace serialize {
class Writer;
class Reader;
} // namespace serialize
namespace ml {

enum class KMeansInit {
  /// k distinct uniformly random points.
  Random,
  /// The first k points of the dataset (cheap, order-sensitive).
  Prefix,
  /// D^2-weighted seeding (kmeans++); the paper's "centerplus".
  CenterPlus,
};

struct KMeansOptions {
  unsigned K = 8;
  unsigned MaxIterations = 50;
  KMeansInit Init = KMeansInit::CenterPlus;
  uint64_t Seed = 1;
  /// Stop when no assignment changes.
  bool EarlyStop = true;
};

struct KMeansResult {
  linalg::Matrix Centroids;        // K x D
  std::vector<unsigned> Assignment; // per point, in [0, K)
  double Inertia = 0.0;            // sum of squared distances to centroid
  unsigned IterationsRun = 0;
};

/// Runs Lloyd's algorithm on the rows of \p Points. If \p Cost is given,
/// distance computations are charged to it (2*D flops per point-centroid
/// distance), making K-means usable as a tunable kernel. K is clamped to
/// the number of points. Empty clusters are re-seeded from the point
/// farthest from its centroid.
KMeansResult kMeans(const linalg::Matrix &Points, const KMeansOptions &Options,
                    support::CostCounter *Cost = nullptr);

/// Index of the centroid nearest to \p Row (ties to the lowest index).
unsigned nearestCentroid(const linalg::Matrix &Centroids,
                         const std::vector<double> &Row);

/// Serialization hooks for the model-persistence layer: exact text round
/// trip of a clustering result (centroids, assignment, inertia).
void saveKMeansResult(serialize::Writer &W, const KMeansResult &Result);
/// Validates that every assignment refers to a stored centroid.
bool loadKMeansResult(serialize::Reader &R, KMeansResult &Result);

} // namespace ml
} // namespace pbt

#endif // PBT_ML_KMEANS_H

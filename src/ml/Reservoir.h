//===- ml/Reservoir.h - Deterministic stream sampling -----------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampling over an unbounded request stream, the training-set source of
/// the adaptive serving loop (runtime/AdaptiveService.h): when drift is
/// detected, the shadow pipeline retrains on the sampler's current
/// contents instead of the full (unavailable) live distribution.
///
/// Two policies share one class:
///
///   * Recent  -- a sliding-window reservoir: the sample is exactly the
///                last `Capacity` stream items. This is the adaptation
///                default: after a distribution shift the window fills
///                with post-shift traffic, so the retrain sees the new
///                regime, not a uniform mix dominated by history.
///   * Uniform -- Vitter's algorithm R: each item seen since the last
///                reset() is retained with equal probability. Used when
///                the goal is a summary of everything served.
///
/// Both are deterministic: the same seed and the same add() sequence
/// produce the same sample on every platform (support/Random).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_RESERVOIR_H
#define PBT_ML_RESERVOIR_H

#include "support/Random.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbt {
namespace ml {

enum class ReservoirPolicy {
  Recent,  ///< sliding window: the last Capacity items
  Uniform, ///< algorithm R: uniform over items since the last reset()
};

class Reservoir {
public:
  Reservoir() = default;
  Reservoir(size_t Capacity, uint64_t Seed,
            ReservoirPolicy Policy = ReservoirPolicy::Recent);

  /// Offers one stream item to the sampler.
  void add(size_t Item);

  /// The retained items. Recent policy: arrival order (oldest first).
  /// Uniform policy: slot order (an unordered uniform sample).
  std::vector<size_t> sample() const;

  /// sample() into a caller-owned buffer (cleared first). The adaptive
  /// loop keeps one buffer across retrain rounds, so the per-drift sample
  /// materialisation stops allocating.
  void sampleInto(std::vector<size_t> &Out) const;

  /// Number of distinct item values currently retained (the retrain
  /// feasibility check: a window full of one hot input cannot train).
  /// Uses an internal scratch buffer reused across calls.
  size_t distinctCount() const;

  /// Items offered since construction or the last reset().
  uint64_t seen() const { return Seen; }
  size_t size() const { return Items.size(); }
  size_t capacity() const { return Capacity; }
  bool full() const { return Items.size() == Capacity; }
  ReservoirPolicy policy() const { return Policy; }

  /// Empties the sampler and restarts its deterministic stream state, so
  /// the next fill reflects only post-reset traffic (called after every
  /// model swap).
  void reset();

private:
  size_t Capacity = 0;
  ReservoirPolicy Policy = ReservoirPolicy::Recent;
  uint64_t Seed = 0;
  uint64_t Seen = 0;
  size_t Next = 0; ///< Recent policy: ring cursor.
  support::Rng Rng{0};
  std::vector<size_t> Items;
  /// distinctCount() scratch, reused across retrain rounds.
  mutable std::vector<size_t> Scratch;
};

} // namespace ml
} // namespace pbt

#endif // PBT_ML_RESERVOIR_H

//===- ml/Dataset.h - Columnar training substrate ---------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The columnar training substrate of the two-level pipeline. A Dataset is
/// extracted exactly once per training run from the Level-1 evidence
/// tables and then threaded through labelling, the Level-2 classifier
/// zoo, cross-validation and tree building as lightweight row-index
/// views, replacing the old pattern where every (fold x subset x tree
/// node x feature) re-gathered rows, re-read the row-major matrices and
/// re-sorted indices:
///
///   * struct-of-arrays columns: one contiguous array per ML feature, per
///     feature-extraction cost, and per candidate (landmark) time
///     column, so the inner training loops stream one column instead of
///     striding a row-major table;
///   * a precomputed meets-accuracy bit per (row, candidate), the
///     satisfaction predicate every scorer re-derived from Acc and the
///     accuracy threshold;
///   * the label column (best-landmark labelling, computed once by
///     core/Labeling and attached here);
///   * a global presorted-feature index: each feature column argsorted
///     once (ties by row id). Tree builds walk rank-filtered views of
///     this index SPRINT-style (PresortedBase / PresortedView below)
///     instead of sorting inside every node.
///
/// Everything a Dataset serves is a pure reorganisation of the evidence
/// tables: consumers produce bit-identical results to the row-major path
/// (pinned by the golden retrain suite and LevelTwo parity tests).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_DATASET_H
#define PBT_ML_DATASET_H

#include "linalg/Matrix.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace pbt {
namespace ml {

class Dataset {
public:
  Dataset() = default;

  /// Columnarizes the evidence once. \p Features / \p ExtractCosts are
  /// N x M (flat ML features), \p Time / \p Acc are N x K (candidate
  /// landmarks). \p AccuracyThreshold feeds the meets-accuracy bits
  /// (nullopt = exact program, every bit set).
  Dataset(const linalg::Matrix &Features, const linalg::Matrix &ExtractCosts,
          const linalg::Matrix &Time, const linalg::Matrix &Acc,
          std::optional<double> AccuracyThreshold);

  size_t numRows() const { return Rows; }
  unsigned numFeatures() const { return NumF; }
  unsigned numCandidates() const { return NumC; }

  const double *featureCol(unsigned F) const {
    assert(F < NumF && "feature out of range");
    return FeatCols.data() + static_cast<size_t>(F) * Rows;
  }
  const double *costCol(unsigned F) const {
    assert(F < NumF && "feature out of range");
    return CostCols.data() + static_cast<size_t>(F) * Rows;
  }
  const double *timeCol(unsigned L) const {
    assert(L < NumC && "candidate out of range");
    return TimeCols.data() + static_cast<size_t>(L) * Rows;
  }
  double feature(size_t Row, unsigned F) const { return featureCol(F)[Row]; }
  double cost(size_t Row, unsigned F) const { return costCol(F)[Row]; }
  double time(size_t Row, unsigned L) const { return timeCol(L)[Row]; }

  /// Whether row \p Row meets the accuracy threshold under candidate
  /// \p L (every consumer of the raw accuracy table wants exactly this
  /// predicate, so the accuracies themselves are not retained). Always
  /// true for exact programs.
  bool meets(size_t Row, unsigned L) const {
    return MeetsBits[static_cast<size_t>(L) * Rows + Row] != 0;
  }

  /// Global presorted-feature index: all row ids ordered by ascending
  /// value of feature \p F, ties by row id.
  const uint32_t *sortedRows(unsigned F) const {
    assert(F < NumF && "feature out of range");
    return SortedIdx.data() + static_cast<size_t>(F) * Rows;
  }

  /// Attaches the label column (one label per row; core/Labeling computes
  /// it so the labelling rule stays in one place).
  void setLabels(std::vector<unsigned> L) {
    assert(L.size() == Rows && "label column must cover every row");
    Labels = std::move(L);
  }
  bool hasLabels() const { return !Labels.empty(); }
  const std::vector<unsigned> &labels() const { return Labels; }
  unsigned label(size_t Row) const {
    assert(hasLabels() && Row < Rows && "missing labels or row out of range");
    return Labels[Row];
  }

private:
  size_t Rows = 0;
  unsigned NumF = 0;
  unsigned NumC = 0;
  std::vector<double> FeatCols;  // NumF x Rows
  std::vector<double> CostCols;  // NumF x Rows
  std::vector<double> TimeCols;  // NumC x Rows
  std::vector<uint8_t> MeetsBits; // NumC x Rows
  std::vector<uint32_t> SortedIdx; // NumF x Rows
  std::vector<unsigned> Labels;  // Rows (optional)
};

/// A lightweight row-subset view: an ordered list of global row ids bound
/// to its dataset. Views compose (a fold view is a subset of the train
/// view), which is how the pipeline's train split, CV folds and fold
/// train/test halves all address the one extracted Dataset.
class RowView {
public:
  RowView() = default;
  RowView(const Dataset &D, std::vector<uint32_t> RowIds)
      : D(&D), Ids(std::move(RowIds)) {
#ifndef NDEBUG
    for (uint32_t R : Ids)
      assert(R < D.numRows() && "row id out of range");
#endif
  }

  /// View of every dataset row, in order.
  static RowView all(const Dataset &D);
  /// View of the given global row ids (e.g. the pipeline's TrainRows).
  static RowView of(const Dataset &D, const std::vector<size_t> &RowIds);

  const Dataset &dataset() const {
    assert(D && "empty view");
    return *D;
  }
  size_t size() const { return Ids.size(); }
  uint32_t operator[](size_t I) const {
    assert(I < Ids.size() && "position out of range");
    return Ids[I];
  }
  const std::vector<uint32_t> &rows() const { return Ids; }

  /// Composition: the sub-view selecting \p Positions *of this view*
  /// (positions, not row ids) -- how a fold split over train positions
  /// becomes a view of global rows.
  RowView subset(const std::vector<size_t> &Positions) const;

private:
  const Dataset *D = nullptr;
  std::vector<uint32_t> Ids;
};

/// Every feature of one row subset in presorted (value, row-id) order,
/// built by rank-filtering the dataset's global presorted index in one
/// O(M x N_total) pass. One PresortedBase per cross-validation fold (and
/// one for the full training set) feeds every tree fit on that subset.
class PresortedBase {
public:
  PresortedBase(const Dataset &D, const std::vector<size_t> &RowIds);
  PresortedBase(const Dataset &D, const RowView &View);

  const Dataset &dataset() const { return *D; }
  /// Rows in the subset.
  size_t size() const { return N; }
  /// The subset's row ids ordered by ascending value of feature \p F.
  const uint32_t *column(unsigned F) const {
    assert(F < D->numFeatures() && "feature out of range");
    return Cols.data() + static_cast<size_t>(F) * N;
  }

private:
  void build(const std::vector<uint32_t> &RowIds);

  const Dataset *D;
  size_t N = 0;
  std::vector<uint32_t> Cols; // numFeatures() x N
};

/// The mutable per-fit view a DecisionTree build consumes: copies of the
/// base's presorted columns for the candidate features, partitioned in
/// place (stably, by the chosen split) as nodes are split -- so the whole
/// build performs no sorting at all.
class PresortedView {
public:
  /// \p Features lists the candidate features (empty = all, in order).
  PresortedView(const PresortedBase &Base,
                const std::vector<unsigned> &Features);

  const Dataset &dataset() const { return *D; }
  size_t size() const { return N; }
  unsigned numFeatures() const {
    return static_cast<unsigned>(Feats.size());
  }
  unsigned featureAt(unsigned CI) const {
    assert(CI < Feats.size() && "candidate index out of range");
    return Feats[CI];
  }
  uint32_t *column(unsigned CI) {
    assert(CI < Feats.size() && "candidate index out of range");
    return Cols.data() + static_cast<size_t>(CI) * N;
  }
  const uint32_t *column(unsigned CI) const {
    assert(CI < Feats.size() && "candidate index out of range");
    return Cols.data() + static_cast<size_t>(CI) * N;
  }

private:
  const Dataset *D;
  size_t N = 0;
  std::vector<unsigned> Feats;
  std::vector<uint32_t> Cols; // Feats.size() x N
};

} // namespace ml
} // namespace pbt

#endif // PBT_ML_DATASET_H

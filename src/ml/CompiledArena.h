//===- ml/CompiledArena.h - Flat storage for lowered classifiers ----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data substrate of the compiled inference path: every trained
/// learner can lower itself ("compile") into one shared, contiguous,
/// pointer-free arena of doubles and 32-bit integers. A lowered
/// classifier is then nothing but a CompiledClassifier descriptor --
/// a kind tag plus offsets into the arena -- so online classification
/// is array walks over hot cache lines with no virtual dispatch, no
/// std::function indirection, and no per-call allocation.
///
/// Layout per kind:
///  - Tree: struct-of-arrays nodes. Feature[i] >= 0 is a split reading
///    flat feature Feature[i] against Threshold[i], descending to
///    Left[i]/Right[i]; Feature[i] < 0 is a leaf whose label is Left[i].
///  - Bayes: the acquisition order, per-position quantile edges and
///    class-conditional log-probability tables flattened row-major, and
///    the priors pre-logged so the per-decision loop starts from plain
///    loads.
///  - OneLevel: centroids flattened row-major, the normalizer fused
///    into per-feature (offset, scale) pairs (scale == 0 encodes the
///    zero-variance "map to 0" rule, hoisting the epsilon test out of
///    the hot loop), and the centroid-to-landmark table.
///
/// This header lives in ml/ (not runtime/) so each learner can declare a
/// compileInto hook without a layering inversion; runtime/CompiledModel.h
/// composes descriptors into a servable model.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_COMPILEDARENA_H
#define PBT_ML_COMPILEDARENA_H

#include "support/AlignedAlloc.h"

#include <cstddef>
#include <cstdint>

namespace pbt {
namespace ml {

/// Append-only backing store shared by every classifier lowered into one
/// CompiledModel. Offsets (not pointers) address into it, so the arena
/// can be moved/copied freely and stays cache-dense. Storage is 64-byte
/// aligned so the SIMD serving tiers can use full-width aligned loads
/// over it without ever splitting a cache line.
struct CompiledArena {
  support::CacheAlignedVector<double> F64;
  support::CacheAlignedVector<int32_t> I32;

  /// Appends \p N doubles and returns the offset of the first.
  uint32_t appendF64(const double *V, size_t N) {
    uint32_t Base = static_cast<uint32_t>(F64.size());
    F64.insert(F64.end(), V, V + N);
    return Base;
  }
  /// Appends \p N int32s and returns the offset of the first.
  uint32_t appendI32(const int32_t *V, size_t N) {
    uint32_t Base = static_cast<uint32_t>(I32.size());
    I32.insert(I32.end(), V, V + N);
    return Base;
  }
};

/// Which lowering a CompiledClassifier describes.
enum class CompiledKind : uint8_t {
  /// Fixed landmark, no feature access (constant and max-apriori).
  Constant,
  MaxApriori,
  /// Decision tree over flat features (struct-of-arrays nodes).
  Tree,
  /// Incremental naive Bayes with sequential feature acquisition.
  Bayes,
  /// Nearest centroid in normalized feature space (one-level baseline).
  OneLevel,
};

/// One lowered classifier: a kind tag plus arena offsets. Produced by the
/// learners' compileInto hooks; consumed by runtime::CompiledModel.
struct CompiledClassifier {
  CompiledKind Kind = CompiledKind::Constant;

  /// Constant / MaxApriori: the fixed prediction.
  uint32_t Landmark = 0;

  /// Tree: parallel node arrays (see file comment for leaf encoding).
  uint32_t NumNodes = 0;
  uint32_t TreeFeature = 0;   ///< I32 base, NumNodes entries
  uint32_t TreeLeft = 0;      ///< I32 base, NumNodes entries
  uint32_t TreeRight = 0;     ///< I32 base, NumNodes entries
  uint32_t TreeThreshold = 0; ///< F64 base, NumNodes entries

  /// Bayes: acquisition order + flattened tables.
  uint32_t OrderBase = 0; ///< I32 base, OrderLen entries
  uint32_t OrderLen = 0;
  uint32_t Bins = 0;
  uint32_t Classes = 0;
  uint32_t EdgeBase = 0;     ///< F64 base, OrderLen * (Bins-1)
  uint32_t LogProbBase = 0;  ///< F64 base, OrderLen * Classes * Bins
  uint32_t LogPriorBase = 0; ///< F64 base, Classes (already logged)
  double PosteriorThreshold = 0.0;

  /// OneLevel: centroids + fused normalizer + landmark table.
  uint32_t CentroidBase = 0; ///< F64 base, NumCentroids * Dim
  uint32_t NumCentroids = 0;
  uint32_t Dim = 0;
  uint32_t NormBase = 0; ///< F64 base, Dim (offset, scale) pairs
  uint32_t ClusterLandmarkBase = 0; ///< I32 base, NumCentroids entries
};

} // namespace ml
} // namespace pbt

#endif // PBT_ML_COMPILEDARENA_H

//===- ml/CrossValidation.cpp -----------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/CrossValidation.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace pbt;
using namespace pbt::ml;

std::vector<FoldSplit> ml::kFoldSplits(size_t N, unsigned K,
                                       support::Rng &Rng) {
  assert(N >= 2 && "need at least two samples to split");
  K = std::max(2u, std::min<unsigned>(K, static_cast<unsigned>(N)));

  std::vector<size_t> Indices(N);
  std::iota(Indices.begin(), Indices.end(), 0);
  Rng.shuffle(Indices);

  std::vector<FoldSplit> Folds(K);
  for (size_t I = 0; I != N; ++I) {
    unsigned F = static_cast<unsigned>(I % K);
    Folds[F].Test.push_back(Indices[I]);
  }
  for (unsigned F = 0; F != K; ++F) {
    for (unsigned G = 0; G != K; ++G)
      if (G != F)
        Folds[F].Train.insert(Folds[F].Train.end(), Folds[G].Test.begin(),
                              Folds[G].Test.end());
    std::sort(Folds[F].Train.begin(), Folds[F].Train.end());
    std::sort(Folds[F].Test.begin(), Folds[F].Test.end());
  }
  return Folds;
}

std::vector<FoldSplit>
ml::stratifiedKFoldSplits(const std::vector<unsigned> &Y, unsigned NumClasses,
                          unsigned K, support::Rng &Rng) {
  size_t N = Y.size();
  assert(N >= 2 && "need at least two samples to split");
  K = std::max(2u, std::min<unsigned>(K, static_cast<unsigned>(N)));

  // Group indices by class, shuffle within class, then deal round-robin.
  std::vector<std::vector<size_t>> ByClass(NumClasses);
  for (size_t I = 0; I != N; ++I) {
    assert(Y[I] < NumClasses && "label out of range");
    ByClass[Y[I]].push_back(I);
  }
  std::vector<FoldSplit> Folds(K);
  unsigned NextFold = 0;
  for (auto &Group : ByClass) {
    Rng.shuffle(Group);
    for (size_t I : Group) {
      Folds[NextFold].Test.push_back(I);
      NextFold = (NextFold + 1) % K;
    }
  }
  for (unsigned F = 0; F != K; ++F) {
    for (unsigned G = 0; G != K; ++G)
      if (G != F)
        Folds[F].Train.insert(Folds[F].Train.end(), Folds[G].Test.begin(),
                              Folds[G].Test.end());
    std::sort(Folds[F].Train.begin(), Folds[F].Train.end());
    std::sort(Folds[F].Test.begin(), Folds[F].Test.end());
  }
  return Folds;
}

std::vector<size_t> ml::gatherRows(const std::vector<size_t> &Rows,
                                   const std::vector<size_t> &Positions) {
  std::vector<size_t> Out;
  Out.reserve(Positions.size());
  for (size_t P : Positions) {
    assert(P < Rows.size() && "fold position out of range");
    Out.push_back(Rows[P]);
  }
  return Out;
}

FoldSplit ml::trainTestSplit(size_t N, double TrainFraction,
                             support::Rng &Rng) {
  assert(N >= 2 && "need at least two samples to split");
  assert(TrainFraction > 0.0 && TrainFraction < 1.0 &&
         "train fraction must be in (0,1)");
  std::vector<size_t> Indices(N);
  std::iota(Indices.begin(), Indices.end(), 0);
  Rng.shuffle(Indices);
  size_t NumTrain = std::max<size_t>(
      1, std::min<size_t>(N - 1, static_cast<size_t>(TrainFraction *
                                                     static_cast<double>(N))));
  FoldSplit S;
  S.Train.assign(Indices.begin(), Indices.begin() + NumTrain);
  S.Test.assign(Indices.begin() + NumTrain, Indices.end());
  std::sort(S.Train.begin(), S.Train.end());
  std::sort(S.Test.begin(), S.Test.end());
  return S;
}

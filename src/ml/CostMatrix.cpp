//===- ml/CostMatrix.cpp ---------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/CostMatrix.h"

#include "serialize/TextFormat.h"

using namespace pbt;
using namespace pbt::ml;

void CostMatrix::saveTo(serialize::Writer &W) const {
  W.key("cost-matrix").u64(K).end();
  W.doubles("costs", C);
}

bool CostMatrix::loadFrom(serialize::Reader &R) {
  if (!R.expect("cost-matrix"))
    return false;
  uint64_t Classes = R.count(1u << 12);
  if (!R.endLine())
    return false;
  std::vector<double> Costs;
  if (!R.doubles("costs", Costs, Classes * Classes))
    return false;
  if (Costs.size() != Classes * Classes)
    return R.fail("cost matrix entry count mismatch");
  K = static_cast<unsigned>(Classes);
  C = std::move(Costs);
  return true;
}

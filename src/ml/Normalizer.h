//===- ml/Normalizer.h - Z-score feature normalisation ---------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-column z-score normalisation. The paper normalises input feature
/// vectors before clustering "to avoid biases imposed by the different
/// value scales in different dimensions" (Level 1, Step 2).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_NORMALIZER_H
#define PBT_ML_NORMALIZER_H

#include "linalg/Matrix.h"

#include <cstdint>
#include <vector>

namespace pbt {
namespace serialize {
class Writer;
class Reader;
} // namespace serialize
namespace ml {

struct CompiledArena;

/// Fits per-column mean/stddev on a data matrix and maps rows into z-score
/// space. Columns with (near-)zero variance map to 0, so constant features
/// are effectively ignored downstream instead of producing NaNs.
class Normalizer {
public:
  /// Fits on the rows of \p X (samples x features).
  void fit(const linalg::Matrix &X);

  /// Transforms a matrix (same column count as fitted).
  linalg::Matrix transform(const linalg::Matrix &X) const;

  /// Transforms a single row vector in place.
  void transformRow(std::vector<double> &Row) const;

  size_t numFeatures() const { return Mean.size(); }
  double mean(size_t Col) const { return Mean[Col]; }
  double stddev(size_t Col) const { return Std[Col]; }

  /// Serialization hooks for the model-persistence layer (exact text
  /// round trip; see serialize/TextFormat.h).
  void saveTo(serialize::Writer &W) const;
  bool loadFrom(serialize::Reader &R);

  /// Compile hook for the serving path: appends per-feature
  /// (offset, scale) pairs to \p A and returns their base offset. The
  /// near-zero-variance test is resolved at compile time (scale == 0
  /// encodes "map to 0"), so the per-decision transform is a branch on a
  /// loaded value plus one subtract and one divide -- bit-identical to
  /// transformRow().
  uint32_t compileInto(CompiledArena &A) const;

private:
  std::vector<double> Mean;
  std::vector<double> Std;
};

} // namespace ml
} // namespace pbt

#endif // PBT_ML_NORMALIZER_H

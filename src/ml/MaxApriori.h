//===- ml/MaxApriori.h - Prior-only classifier ------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's classifier family (1): "Max-apriori" predicts the label with
/// the maximum empirical prior for every instance. It extracts no input
/// features at all, so its feature-extraction cost is zero -- which is
/// exactly why it sometimes wins classifier selection on benchmarks whose
/// landmark configurations barely differ.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ML_MAXAPRIORI_H
#define PBT_ML_MAXAPRIORI_H

#include <cassert>
#include <vector>

namespace pbt {
namespace serialize {
class Writer;
class Reader;
} // namespace serialize
namespace ml {

struct CompiledArena;
struct CompiledClassifier;

/// Counts labels at fit time; predicts the modal label thereafter.
class MaxApriori {
public:
  void fit(const std::vector<unsigned> &Y, unsigned NumClasses) {
    assert(!Y.empty() && "cannot fit on zero labels");
    Priors.assign(NumClasses, 0.0);
    for (unsigned L : Y) {
      assert(L < NumClasses && "label out of range");
      Priors[L] += 1.0;
    }
    for (double &P : Priors)
      P /= static_cast<double>(Y.size());
    Mode = 0;
    for (unsigned I = 1; I < NumClasses; ++I)
      if (Priors[I] > Priors[Mode])
        Mode = I;
    Trained = true;
  }

  unsigned predict() const {
    assert(Trained && "predict() before fit()");
    return Mode;
  }

  const std::vector<double> &priors() const { return Priors; }
  bool trained() const { return Trained; }

  /// Serialization hooks for the model-persistence layer. Only the priors
  /// are stored; the mode is recomputed on load exactly as fit() does.
  void saveTo(serialize::Writer &W) const;
  bool loadFrom(serialize::Reader &R);

  /// Compile hook for the serving path: the lowered form is just the
  /// modal label (no feature access, no tables).
  void compileInto(CompiledArena &A, CompiledClassifier &Out) const;

private:
  std::vector<double> Priors;
  unsigned Mode = 0;
  bool Trained = false;
};

} // namespace ml
} // namespace pbt

#endif // PBT_ML_MAXAPRIORI_H

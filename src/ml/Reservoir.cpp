//===- ml/Reservoir.cpp -----------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/Reservoir.h"

#include <algorithm>

using namespace pbt;
using namespace pbt::ml;

Reservoir::Reservoir(size_t Capacity, uint64_t Seed, ReservoirPolicy Policy)
    : Capacity(Capacity), Policy(Policy), Seed(Seed), Rng(Seed) {
  Items.reserve(Capacity);
}

void Reservoir::add(size_t Item) {
  if (Capacity == 0)
    return;
  ++Seen;
  if (Items.size() < Capacity) {
    Items.push_back(Item);
    return;
  }
  if (Policy == ReservoirPolicy::Recent) {
    // Ring overwrite: the oldest item leaves, arrival order is recovered
    // by sample() from the cursor.
    Items[Next] = Item;
    Next = (Next + 1) % Capacity;
    return;
  }
  // Algorithm R: the i-th item (1-based) replaces a uniformly random slot
  // with probability Capacity / i.
  uint64_t Slot = Rng.next() % Seen;
  if (Slot < Capacity)
    Items[static_cast<size_t>(Slot)] = Item;
}

std::vector<size_t> Reservoir::sample() const {
  if (Policy != ReservoirPolicy::Recent || Items.size() < Capacity ||
      Next == 0)
    return Items;
  // Unroll the ring so the caller sees oldest-to-newest arrival order.
  std::vector<size_t> Out;
  Out.reserve(Items.size());
  Out.insert(Out.end(), Items.begin() + static_cast<long>(Next), Items.end());
  Out.insert(Out.end(), Items.begin(), Items.begin() + static_cast<long>(Next));
  return Out;
}

size_t Reservoir::distinctCount() const {
  std::vector<size_t> Sorted = Items;
  std::sort(Sorted.begin(), Sorted.end());
  return static_cast<size_t>(
      std::unique(Sorted.begin(), Sorted.end()) - Sorted.begin());
}

void Reservoir::reset() {
  Items.clear();
  Seen = 0;
  Next = 0;
  Rng = support::Rng(Seed);
}

//===- ml/Reservoir.cpp -----------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/Reservoir.h"

#include <algorithm>

using namespace pbt;
using namespace pbt::ml;

Reservoir::Reservoir(size_t Capacity, uint64_t Seed, ReservoirPolicy Policy)
    : Capacity(Capacity), Policy(Policy), Seed(Seed), Rng(Seed) {
  Items.reserve(Capacity);
}

void Reservoir::add(size_t Item) {
  if (Capacity == 0)
    return;
  ++Seen;
  if (Items.size() < Capacity) {
    Items.push_back(Item);
    return;
  }
  if (Policy == ReservoirPolicy::Recent) {
    // Ring overwrite: the oldest item leaves, arrival order is recovered
    // by sample() from the cursor.
    Items[Next] = Item;
    Next = (Next + 1) % Capacity;
    return;
  }
  // Algorithm R: the i-th item (1-based) replaces a uniformly random slot
  // with probability Capacity / i.
  uint64_t Slot = Rng.next() % Seen;
  if (Slot < Capacity)
    Items[static_cast<size_t>(Slot)] = Item;
}

std::vector<size_t> Reservoir::sample() const {
  std::vector<size_t> Out;
  sampleInto(Out);
  return Out;
}

void Reservoir::sampleInto(std::vector<size_t> &Out) const {
  Out.clear();
  Out.reserve(Items.size());
  if (Policy != ReservoirPolicy::Recent || Items.size() < Capacity ||
      Next == 0) {
    Out.insert(Out.end(), Items.begin(), Items.end());
    return;
  }
  // Unroll the ring so the caller sees oldest-to-newest arrival order.
  Out.insert(Out.end(), Items.begin() + static_cast<long>(Next), Items.end());
  Out.insert(Out.end(), Items.begin(), Items.begin() + static_cast<long>(Next));
}

size_t Reservoir::distinctCount() const {
  Scratch.assign(Items.begin(), Items.end());
  std::sort(Scratch.begin(), Scratch.end());
  return static_cast<size_t>(
      std::unique(Scratch.begin(), Scratch.end()) - Scratch.begin());
}

void Reservoir::reset() {
  Items.clear();
  Seen = 0;
  Next = 0;
  Rng = support::Rng(Seed);
}

//===- ml/DecisionTree.cpp -------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "ml/DecisionTree.h"

#include "ml/CompiledArena.h"
#include "ml/Dataset.h"
#include "serialize/TextFormat.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

using namespace pbt;
using namespace pbt::ml;

/// Gini impurity of a class histogram with \p Total samples.
static double gini(const std::vector<double> &Counts, double Total) {
  if (Total <= 0.0)
    return 0.0;
  double SumSq = 0.0;
  for (double C : Counts)
    SumSq += C * C;
  return 1.0 - SumSq / (Total * Total);
}

unsigned DecisionTree::makeLeaf(const std::vector<double> &ClassCounts,
                                const DecisionTreeOptions &Options) {
  Node L;
  L.IsLeaf = true;
  if (Options.Costs && !Options.Costs->empty()) {
    L.Label = Options.Costs->cheapestPrediction(ClassCounts);
  } else {
    L.Label = static_cast<unsigned>(std::distance(
        ClassCounts.begin(),
        std::max_element(ClassCounts.begin(), ClassCounts.end())));
  }
  Nodes.push_back(L);
  return static_cast<unsigned>(Nodes.size() - 1);
}

unsigned DecisionTree::build(const linalg::Matrix &X,
                             const std::vector<unsigned> &Y,
                             unsigned NumClasses,
                             const DecisionTreeOptions &Options,
                             std::vector<size_t> &Indices, size_t Begin,
                             size_t End, unsigned Depth,
                             std::vector<std::pair<double, unsigned>> &Scratch) {
  assert(End > Begin && "empty node");
  double Total = static_cast<double>(End - Begin);
  std::vector<double> Counts(NumClasses, 0.0);
  for (size_t I = Begin; I != End; ++I)
    Counts[Y[Indices[I]]] += 1.0;

  bool Pure = false;
  for (double C : Counts)
    if (C == Total)
      Pure = true;

  if (Pure || Depth >= Options.MaxDepth ||
      End - Begin < Options.MinSamplesSplit)
    return makeLeaf(Counts, Options);

  // Find the best (feature, threshold) split by exhaustive scan.
  const std::vector<unsigned> &Candidates = Options.AllowedFeatures;
  double ParentImpurity = gini(Counts, Total);
  double BestGain = 1e-12;
  int BestFeature = -1;
  double BestThreshold = 0.0;

  // Copy (value, label) pairs into the reused scratch buffer and sort
  // that, instead of re-sorting an index vector with a Matrix::at
  // comparator per (node, feature): the sweep below only reads counts of
  // labels on each side of a value boundary, which are invariant to the
  // order within equal-value runs, so a plain value sort of the pairs
  // finds exactly the same (feature, threshold) split as the old
  // stable_sort-by-index scan.
  std::vector<double> LeftCounts(NumClasses);
  for (size_t CI = 0, CE = Candidates.empty() ? NumFeatures
                                              : Candidates.size();
       CI != CE; ++CI) {
    unsigned F = Candidates.empty() ? static_cast<unsigned>(CI)
                                    : Candidates[CI];
    Scratch.clear();
    for (size_t I = Begin; I != End; ++I)
      Scratch.emplace_back(X.at(Indices[I], F), Y[Indices[I]]);
    std::sort(Scratch.begin(), Scratch.end(),
              [](const std::pair<double, unsigned> &A,
                 const std::pair<double, unsigned> &B) {
                return A.first < B.first;
              });
    std::fill(LeftCounts.begin(), LeftCounts.end(), 0.0);
    for (size_t I = 0; I + 1 < Scratch.size(); ++I) {
      LeftCounts[Scratch[I].second] += 1.0;
      double Va = Scratch[I].first, Vb = Scratch[I + 1].first;
      if (Va == Vb)
        continue;
      double NLeft = static_cast<double>(I + 1);
      double NRight = Total - NLeft;
      if (NLeft < Options.MinSamplesLeaf || NRight < Options.MinSamplesLeaf)
        continue;
      double RightImpurity;
      {
        // Right counts = Counts - LeftCounts.
        double SumSq = 0.0;
        for (unsigned C = 0; C != NumClasses; ++C) {
          double R = Counts[C] - LeftCounts[C];
          SumSq += R * R;
        }
        RightImpurity = 1.0 - SumSq / (NRight * NRight);
      }
      double Gain = ParentImpurity - (NLeft / Total) * gini(LeftCounts, NLeft) -
                    (NRight / Total) * RightImpurity;
      if (Gain > BestGain) {
        BestGain = Gain;
        BestFeature = static_cast<int>(F);
        BestThreshold = (Va + Vb) / 2.0;
      }
    }
  }

  if (BestFeature < 0)
    return makeLeaf(Counts, Options);

  // Partition indices in place: left = value <= threshold.
  auto Mid = std::stable_partition(
      Indices.begin() + Begin, Indices.begin() + End, [&](size_t I) {
        return X.at(I, static_cast<unsigned>(BestFeature)) <= BestThreshold;
      });
  size_t MidPos = static_cast<size_t>(Mid - Indices.begin());
  if (MidPos == Begin || MidPos == End)
    return makeLeaf(Counts, Options); // Degenerate split; should not happen.

  unsigned Self = static_cast<unsigned>(Nodes.size());
  Nodes.emplace_back();
  Nodes[Self].IsLeaf = false;
  Nodes[Self].Feature = BestFeature;
  Nodes[Self].Threshold = BestThreshold;
  unsigned Left = build(X, Y, NumClasses, Options, Indices, Begin, MidPos,
                        Depth + 1, Scratch);
  unsigned Right = build(X, Y, NumClasses, Options, Indices, MidPos, End,
                         Depth + 1, Scratch);
  Nodes[Self].Left = Left;
  Nodes[Self].Right = Right;
  return Self;
}

/// The presorted (SPRINT-style) twin of build(): candidate sweeps walk
/// the view's value-ordered row lists, so the per-(node, feature) sort
/// disappears; the boundary scan, gain arithmetic and tie rules are
/// copied verbatim from build(), which is what makes the produced tree
/// bit-identical (the sweep only reads label counts on each side of a
/// value boundary, invariant to order within equal-value runs).
unsigned DecisionTree::buildPresorted(const ml::Dataset &Data,
                                      const std::vector<unsigned> &Y,
                                      unsigned NumClasses,
                                      const DecisionTreeOptions &Options,
                                      ml::PresortedView &View, size_t Begin,
                                      size_t End, unsigned Depth,
                                      std::vector<uint32_t> &Scratch) {
  assert(End > Begin && "empty node");
  double Total = static_cast<double>(End - Begin);
  const uint32_t *AnyCol = View.column(0);
  std::vector<double> Counts(NumClasses, 0.0);
  for (size_t I = Begin; I != End; ++I)
    Counts[Y[AnyCol[I]]] += 1.0;

  bool Pure = false;
  for (double C : Counts)
    if (C == Total)
      Pure = true;

  if (Pure || Depth >= Options.MaxDepth ||
      End - Begin < Options.MinSamplesSplit)
    return makeLeaf(Counts, Options);

  double ParentImpurity = gini(Counts, Total);
  double BestGain = 1e-12;
  int BestFeature = -1;
  double BestThreshold = 0.0;

  std::vector<double> LeftCounts(NumClasses);
  for (unsigned CI = 0, CE = View.numFeatures(); CI != CE; ++CI) {
    unsigned F = View.featureAt(CI);
    const uint32_t *Col = View.column(CI);
    const double *Vals = Data.featureCol(F);
    std::fill(LeftCounts.begin(), LeftCounts.end(), 0.0);
    for (size_t I = Begin; I + 1 < End; ++I) {
      LeftCounts[Y[Col[I]]] += 1.0;
      double Va = Vals[Col[I]], Vb = Vals[Col[I + 1]];
      if (Va == Vb)
        continue;
      double NLeft = static_cast<double>(I - Begin + 1);
      double NRight = Total - NLeft;
      if (NLeft < Options.MinSamplesLeaf || NRight < Options.MinSamplesLeaf)
        continue;
      double RightImpurity;
      {
        // Right counts = Counts - LeftCounts.
        double SumSq = 0.0;
        for (unsigned C = 0; C != NumClasses; ++C) {
          double R = Counts[C] - LeftCounts[C];
          SumSq += R * R;
        }
        RightImpurity = 1.0 - SumSq / (NRight * NRight);
      }
      double Gain = ParentImpurity - (NLeft / Total) * gini(LeftCounts, NLeft) -
                    (NRight / Total) * RightImpurity;
      if (Gain > BestGain) {
        BestGain = Gain;
        BestFeature = static_cast<int>(F);
        BestThreshold = (Va + Vb) / 2.0;
      }
    }
  }

  if (BestFeature < 0)
    return makeLeaf(Counts, Options);

  // Stable in-place partition of every candidate column by the chosen
  // split: left rows compact forward (overwriting only positions already
  // read), right rows stage in the scratch buffer and copy back. Each
  // column stays value-ordered for its own feature, so children need no
  // re-sorting.
  const double *SplitVals = Data.featureCol(static_cast<unsigned>(BestFeature));
  size_t MidPos = Begin;
  for (unsigned CI = 0, CE = View.numFeatures(); CI != CE; ++CI) {
    uint32_t *Col = View.column(CI);
    Scratch.clear();
    size_t Write = Begin;
    for (size_t I = Begin; I != End; ++I) {
      uint32_t Row = Col[I];
      if (SplitVals[Row] <= BestThreshold)
        Col[Write++] = Row;
      else
        Scratch.push_back(Row);
    }
    std::copy(Scratch.begin(), Scratch.end(), Col + Write);
    MidPos = Write;
  }
  if (MidPos == Begin || MidPos == End)
    return makeLeaf(Counts, Options); // Degenerate split; should not happen.

  unsigned Self = static_cast<unsigned>(Nodes.size());
  Nodes.emplace_back();
  Nodes[Self].IsLeaf = false;
  Nodes[Self].Feature = BestFeature;
  Nodes[Self].Threshold = BestThreshold;
  unsigned Left = buildPresorted(Data, Y, NumClasses, Options, View, Begin,
                                 MidPos, Depth + 1, Scratch);
  unsigned Right = buildPresorted(Data, Y, NumClasses, Options, View, MidPos,
                                  End, Depth + 1, Scratch);
  Nodes[Self].Left = Left;
  Nodes[Self].Right = Right;
  return Self;
}

void DecisionTree::fit(const ml::Dataset &Data, const std::vector<unsigned> &Y,
                       unsigned NumClasses, const DecisionTreeOptions &Options,
                       ml::PresortedView &View) {
  assert(Y.size() == Data.numRows() && "labels must cover every dataset row");
  assert(NumClasses >= 1 && "need at least one class");
  assert(View.size() > 0 && "cannot train on zero samples");
  assert(View.numFeatures() > 0 && "need at least one candidate feature");
  Nodes.clear();
  NumFeatures = Data.numFeatures();
  std::vector<uint32_t> Scratch;
  Scratch.reserve(View.size());
  buildPresorted(Data, Y, NumClasses, Options, View, 0, View.size(), 0,
                 Scratch);
}

void DecisionTree::fit(const linalg::Matrix &X, const std::vector<unsigned> &Y,
                       unsigned NumClasses,
                       const DecisionTreeOptions &Options,
                       const std::vector<size_t> &SampleIndices) {
  assert(X.rows() == Y.size() && "row/label count mismatch");
  assert(NumClasses >= 1 && "need at least one class");
  Nodes.clear();
  NumFeatures = X.cols();

  std::vector<size_t> Indices;
  if (SampleIndices.empty()) {
    Indices.resize(X.rows());
    std::iota(Indices.begin(), Indices.end(), 0);
  } else {
    Indices = SampleIndices;
  }
  assert(!Indices.empty() && "cannot train on zero samples");
#ifndef NDEBUG
  for (size_t I : Indices)
    assert(I < X.rows() && Y[I] < NumClasses && "bad sample index or label");
#endif
  std::vector<std::pair<double, unsigned>> Scratch;
  Scratch.reserve(Indices.size());
  build(X, Y, NumClasses, Options, Indices, 0, Indices.size(), 0, Scratch);
}

unsigned DecisionTree::predict(const double *Row, size_t Width) const {
  assert(trained() && "predict() before fit()");
  assert(Width >= NumFeatures && "row too narrow for this tree");
  (void)Width;
  // Root is node 0 only when the tree is a single leaf; interior nodes are
  // emplaced pre-order so the root is always index 0.
  unsigned N = 0;
  while (!Nodes[N].IsLeaf) {
    const Node &Cur = Nodes[N];
    N = Row[Cur.Feature] <= Cur.Threshold ? Cur.Left : Cur.Right;
  }
  return Nodes[N].Label;
}

unsigned DecisionTree::predict(const std::vector<double> &Row) const {
  return predict(Row.data(), Row.size());
}

unsigned DecisionTree::predictLazy(
    const std::function<double(unsigned)> &GetFeature) const {
  return predictWith(GetFeature);
}

std::string DecisionTree::structuralKey() const {
  std::string Key;
  Key.reserve(Nodes.size() * 21 + 8);
  auto AppendU32 = [&Key](uint32_t V) {
    char Buf[4];
    std::memcpy(Buf, &V, 4);
    Key.append(Buf, 4);
  };
  AppendU32(static_cast<uint32_t>(Nodes.size()));
  for (const Node &N : Nodes) {
    Key.push_back(N.IsLeaf ? 1 : 0);
    if (N.IsLeaf) {
      AppendU32(N.Label);
    } else {
      AppendU32(static_cast<uint32_t>(N.Feature));
      char Buf[8];
      std::memcpy(Buf, &N.Threshold, 8);
      Key.append(Buf, 8);
      AppendU32(N.Left);
      AppendU32(N.Right);
    }
  }
  return Key;
}

std::vector<unsigned> DecisionTree::usedFeatures() const {
  std::vector<bool> Seen(NumFeatures, false);
  for (const Node &N : Nodes)
    if (!N.IsLeaf)
      Seen[static_cast<size_t>(N.Feature)] = true;
  std::vector<unsigned> Out;
  for (size_t I = 0; I != Seen.size(); ++I)
    if (Seen[I])
      Out.push_back(static_cast<unsigned>(I));
  return Out;
}

void DecisionTree::saveTo(serialize::Writer &W) const {
  W.key("decision-tree").u64(Nodes.size()).u64(NumFeatures).end();
  for (const Node &N : Nodes) {
    if (N.IsLeaf)
      W.key("leaf").u64(N.Label).end();
    else
      W.key("split")
          .u64(static_cast<uint64_t>(N.Feature))
          .f(N.Threshold)
          .u64(N.Left)
          .u64(N.Right)
          .end();
  }
}

bool DecisionTree::loadFrom(serialize::Reader &R, unsigned NumClasses) {
  if (!R.expect("decision-tree"))
    return false;
  uint64_t Count = R.count(1u << 24);
  uint64_t Feats = R.count(1u << 20);
  if (!R.endLine())
    return false;
  // Every trained tree has at least its root leaf; an empty node list
  // would make prediction read past the vector.
  if (Count == 0)
    return R.fail("decision tree needs at least one node");
  std::vector<Node> Loaded;
  for (uint64_t I = 0; I != Count && R.ok(); ++I) {
    std::string Key = R.nextKey();
    Node N;
    if (Key == "leaf") {
      N.IsLeaf = true;
      uint64_t Label = R.u64();
      if (R.ok() && Label >= NumClasses)
        return R.fail("leaf label out of range");
      N.Label = static_cast<unsigned>(Label);
    } else if (Key == "split") {
      N.IsLeaf = false;
      uint64_t Feature = R.u64();
      N.Threshold = R.f();
      uint64_t Left = R.u64();
      uint64_t Right = R.u64();
      if (!R.ok())
        return false;
      if (Feature >= Feats)
        return R.fail("split feature out of range");
      // Children are emplaced after their parent during training; the
      // same invariant here guarantees prediction terminates.
      if (Left <= I || Left >= Count || Right <= I || Right >= Count)
        return R.fail("split child index out of range");
      N.Feature = static_cast<int>(Feature);
      N.Left = static_cast<unsigned>(Left);
      N.Right = static_cast<unsigned>(Right);
    } else {
      return R.fail("expected 'leaf' or 'split', got '" + Key + "'");
    }
    if (!R.endLine())
      return false;
    Loaded.push_back(N);
  }
  if (!R.ok())
    return false;
  Nodes = std::move(Loaded);
  NumFeatures = Feats;
  return true;
}

void DecisionTree::compileInto(CompiledArena &A,
                               CompiledClassifier &Out) const {
  assert(trained() && "compileInto() before fit()/loadFrom()");
  Out.Kind = CompiledKind::Tree;
  Out.NumNodes = static_cast<uint32_t>(Nodes.size());
  std::vector<int32_t> Feature(Nodes.size()), Left(Nodes.size()),
      Right(Nodes.size());
  std::vector<double> Threshold(Nodes.size());
  for (size_t I = 0; I != Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    if (N.IsLeaf) {
      Feature[I] = -1;
      Left[I] = static_cast<int32_t>(N.Label);
      Right[I] = static_cast<int32_t>(N.Label);
      Threshold[I] = 0.0;
    } else {
      Feature[I] = N.Feature;
      Left[I] = static_cast<int32_t>(N.Left);
      Right[I] = static_cast<int32_t>(N.Right);
      Threshold[I] = N.Threshold;
    }
  }
  Out.TreeFeature = A.appendI32(Feature.data(), Feature.size());
  Out.TreeLeft = A.appendI32(Left.data(), Left.size());
  Out.TreeRight = A.appendI32(Right.data(), Right.size());
  Out.TreeThreshold = A.appendF64(Threshold.data(), Threshold.size());
}

unsigned DecisionTree::depth() const {
  if (Nodes.empty())
    return 0;
  // Iterative depth computation over the explicit structure.
  std::vector<std::pair<unsigned, unsigned>> Stack = {{0u, 1u}};
  unsigned MaxDepth = 0;
  while (!Stack.empty()) {
    auto [N, D] = Stack.back();
    Stack.pop_back();
    MaxDepth = std::max(MaxDepth, D);
    if (!Nodes[N].IsLeaf) {
      Stack.push_back({Nodes[N].Left, D + 1});
      Stack.push_back({Nodes[N].Right, D + 1});
    }
  }
  return MaxDepth;
}

//===- autotuner/EvolutionaryAutotuner.h - Evolutionary config search ------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PetaBricks-style evolutionary autotuner. Given a TunableProgram and
/// one training input (in the two-level pipeline: the input nearest a
/// cluster centroid), it searches the program's configuration space for a
/// configuration minimising execution cost, subject to the program's
/// accuracy target when one exists.
///
/// Fitness is lexicographic, mirroring PetaBricks' variable-accuracy
/// objective (paper Section 2.3): first meet the accuracy threshold, then
/// minimise time; configurations that all miss the threshold compare by
/// accuracy. Search is a steady generational GA with tournament selection,
/// elitism, uniform crossover, and the per-parameter mutators declared by
/// the ConfigSpace.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_AUTOTUNER_EVOLUTIONARYAUTOTUNER_H
#define PBT_AUTOTUNER_EVOLUTIONARYAUTOTUNER_H

#include "runtime/TunableProgram.h"
#include "support/ThreadPool.h"

#include <optional>
#include <vector>

namespace pbt {
namespace autotuner {

struct AutotunerOptions {
  unsigned PopulationSize = 24;
  unsigned Generations = 30;
  unsigned TournamentSize = 3;
  unsigned EliteCount = 2;
  /// Probability an offspring comes from crossover (else a mutated clone).
  double CrossoverRate = 0.5;
  /// Per-parameter mutation probability.
  double MutationRate = 0.35;
  /// Mutation step size as a fraction of each parameter's range.
  double MutationStrength = 0.15;
  uint64_t Seed = 0;
  /// Optional pool for parallel candidate evaluation. Results are
  /// identical with or without it (the cost model is deterministic).
  support::ThreadPool *Pool = nullptr;
  /// Memoize (configuration -> outcome) within one tune() call. Elitism,
  /// low-rate mutation and crossover of converging parents re-emit
  /// previously measured configurations constantly (up to ~85% of
  /// evaluations on the discrete-heavy benchmarks); the program runs are
  /// deterministic, so replaying the recorded outcome is exact. Disabled
  /// by the `pbt-bench trainbench` pre-optimisation baseline.
  bool Memoize = true;
};

/// Outcome of a tuning run.
struct TuneResult {
  runtime::Configuration Best;
  runtime::RunResult BestOutcome;
  unsigned Evaluations = 0;
  /// Best-so-far cost after each generation (for convergence tests).
  std::vector<double> History;
};

/// Compares two run outcomes under an optional accuracy spec.
/// \returns true when \p A is strictly better than \p B.
bool outcomeBetter(const runtime::RunResult &A, const runtime::RunResult &B,
                   const std::optional<runtime::AccuracySpec> &Spec);

/// Evolutionary search over a program's ConfigSpace.
class EvolutionaryAutotuner {
public:
  explicit EvolutionaryAutotuner(AutotunerOptions Options = {})
      : Options(Options) {}

  /// Tunes \p Program for the single training input \p Input.
  TuneResult tune(const runtime::TunableProgram &Program, size_t Input) const;

  /// Tunes \p Program for a set of training inputs (typically a cluster
  /// centroid's neighbourhood). A candidate's time is the mean over the
  /// inputs; its accuracy is the minimum, so the winning configuration
  /// must meet the accuracy target on the whole neighbourhood -- which
  /// makes landmarks robust on unseen inputs from the same cluster.
  TuneResult tune(const runtime::TunableProgram &Program,
                  const std::vector<size_t> &Inputs) const;

  const AutotunerOptions &options() const { return Options; }

private:
  AutotunerOptions Options;
};

} // namespace autotuner
} // namespace pbt

#endif // PBT_AUTOTUNER_EVOLUTIONARYAUTOTUNER_H

//===- autotuner/EvolutionaryAutotuner.cpp ----------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "autotuner/EvolutionaryAutotuner.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace pbt;
using namespace pbt::autotuner;
using runtime::Configuration;
using runtime::RunResult;

bool autotuner::outcomeBetter(const RunResult &A, const RunResult &B,
                              const std::optional<runtime::AccuracySpec> &Spec) {
  if (!Spec)
    return A.TimeUnits < B.TimeUnits;
  bool AMeets = A.Accuracy >= Spec->AccuracyThreshold;
  bool BMeets = B.Accuracy >= Spec->AccuracyThreshold;
  if (AMeets != BMeets)
    return AMeets;
  if (AMeets) // Both meet the target: faster wins.
    return A.TimeUnits < B.TimeUnits;
  // Neither meets it: more accurate wins, time breaks ties.
  if (A.Accuracy != B.Accuracy)
    return A.Accuracy > B.Accuracy;
  return A.TimeUnits < B.TimeUnits;
}

namespace {
/// A candidate configuration with its measured outcome.
struct Candidate {
  Configuration Config;
  RunResult Outcome;
};
} // namespace

TuneResult EvolutionaryAutotuner::tune(const runtime::TunableProgram &Program,
                                       size_t Input) const {
  return tune(Program, std::vector<size_t>{Input});
}

TuneResult
EvolutionaryAutotuner::tune(const runtime::TunableProgram &Program,
                            const std::vector<size_t> &Inputs) const {
  const runtime::ConfigSpace &Space = Program.space();
  std::optional<runtime::AccuracySpec> Spec = Program.accuracy();
  assert(!Inputs.empty() && "need at least one tuning input");
#ifndef NDEBUG
  for (size_t Input : Inputs)
    assert(Input < Program.numInputs() && "tuning input out of range");
#endif
  assert(Options.PopulationSize >= 2 && "population too small");

  support::Rng Rng(Options.Seed);
  unsigned Evaluations = 0;

  // (configuration values -> measured outcome) within this tune() call.
  // The program runs are deterministic, so a repeat of an already measured
  // configuration (elite clones, no-op mutations, crossover of converged
  // parents) replays its outcome exactly. Hits still count as Evaluations
  // -- that counter reports the search effort, not the run budget.
  std::map<std::vector<double>, runtime::RunResult> Memo;

  auto EvaluateAll = [&](std::vector<Candidate> &Pop, size_t Begin) {
    auto EvalOne = [&](size_t I) {
      // Mean time, worst-case accuracy over the tuning inputs.
      double TimeSum = 0.0;
      double AccMin = 1e300;
      for (size_t Input : Inputs) {
        support::CostCounter C;
        runtime::RunResult R = Program.run(Input, Pop[I].Config, C);
        TimeSum += R.TimeUnits;
        AccMin = std::min(AccMin, R.Accuracy);
      }
      Pop[I].Outcome.TimeUnits = TimeSum / static_cast<double>(Inputs.size());
      Pop[I].Outcome.Accuracy = AccMin;
    };
    if (Options.Memoize) {
      // Resolve hits sequentially, evaluate only the misses (in parallel
      // when pooled), then record them. Misses within one batch that share
      // a configuration are evaluated redundantly but identically.
      std::vector<size_t> Misses;
      for (size_t I = Begin; I != Pop.size(); ++I) {
        auto It = Memo.find(Pop[I].Config.values());
        if (It != Memo.end())
          Pop[I].Outcome = It->second;
        else
          Misses.push_back(I);
      }
      if (Options.Pool)
        Options.Pool->parallelFor(0, Misses.size(),
                                  [&](size_t M) { EvalOne(Misses[M]); });
      else
        for (size_t M : Misses)
          EvalOne(M);
      for (size_t I : Misses)
        Memo.emplace(Pop[I].Config.values(), Pop[I].Outcome);
    } else if (Options.Pool) {
      Options.Pool->parallelFor(Begin, Pop.size(), EvalOne);
    } else {
      for (size_t I = Begin; I != Pop.size(); ++I)
        EvalOne(I);
    }
    Evaluations += static_cast<unsigned>(Pop.size() - Begin);
  };

  // Seed population: the deterministic default config plus random samples.
  std::vector<Candidate> Population;
  Population.reserve(Options.PopulationSize);
  Population.push_back({Space.defaultConfig(), {}});
  while (Population.size() < Options.PopulationSize)
    Population.push_back({Space.randomConfig(Rng), {}});
  EvaluateAll(Population, 0);

  auto Better = [&](const Candidate &A, const Candidate &B) {
    return outcomeBetter(A.Outcome, B.Outcome, Spec);
  };

  auto SortByFitness = [&](std::vector<Candidate> &Pop) {
    std::stable_sort(Pop.begin(), Pop.end(), Better);
  };
  SortByFitness(Population);

  TuneResult Result;
  Result.History.reserve(Options.Generations);

  auto TournamentPick = [&]() -> const Candidate & {
    size_t Best = Rng.index(Population.size());
    for (unsigned T = 1; T < Options.TournamentSize; ++T) {
      size_t Other = Rng.index(Population.size());
      if (Better(Population[Other], Population[Best]))
        Best = Other;
    }
    return Population[Best];
  };

  for (unsigned Gen = 0; Gen != Options.Generations; ++Gen) {
    std::vector<Candidate> Next;
    Next.reserve(Options.PopulationSize);
    // Elitism: carry over the best candidates unchanged (already sorted).
    unsigned Elites =
        std::min<unsigned>(Options.EliteCount, Options.PopulationSize);
    for (unsigned I = 0; I != Elites; ++I)
      Next.push_back(Population[I]);

    size_t FreshBegin = Next.size();
    while (Next.size() < Options.PopulationSize) {
      Configuration Child;
      if (Rng.chance(Options.CrossoverRate)) {
        const Candidate &A = TournamentPick();
        const Candidate &B = TournamentPick();
        Child = Space.crossover(A.Config, B.Config, Rng);
      } else {
        Child = TournamentPick().Config;
      }
      Space.mutate(Child, Rng, Options.MutationRate, Options.MutationStrength);
      Next.push_back({std::move(Child), {}});
    }
    EvaluateAll(Next, FreshBegin);
    Population = std::move(Next);
    SortByFitness(Population);
    Result.History.push_back(Population.front().Outcome.TimeUnits);
  }

  Result.Best = Population.front().Config;
  Result.BestOutcome = Population.front().Outcome;
  Result.Evaluations = Evaluations;
  return Result;
}

//===- streams/WorkloadStream.h - Nonstationary request-stream generator ---==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable nonstationary traffic over any registered
/// benchmark: the thing the adaptive serving loop is tested against.
///
/// A WorkloadStream takes a "universe" program (built by the benchmark's
/// own registered input generator) and splits its input population into
/// two pools by a cheap drift key -- one input_feature property sampled
/// at a chosen level -- so the pools genuinely differ in feature space:
/// the base pool holds the inputs below the key's median, the shifted
/// pool those above it. A mixture schedule then says, for every request
/// tick, with what probability the request is drawn from the shifted
/// pool:
///
///   * Abrupt   -- 0 until the switch point, 1 after (a regime change),
///   * Ramp     -- linear 0 -> 1 across the run (gradual migration),
///   * Periodic -- square wave with a configurable period (daily cycle).
///
/// The entire request sequence is materialised at construction from one
/// seed, so every scenario replays bit-identically: an adaptive run and
/// its frozen-baseline control see exactly the same requests, and reruns
/// at any thread count agree.
///
/// MixedStream composes several such streams -- one per tenant, each
/// over its own benchmark -- into one deterministic multi-tenant
/// schedule, the traffic shape the pbt-serve daemon actually faces.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_STREAMS_WORKLOADSTREAM_H
#define PBT_STREAMS_WORKLOADSTREAM_H

#include "runtime/TunableProgram.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pbt {
namespace streams {

enum class Schedule {
  Abrupt,   ///< regime change at SwitchFraction of the run
  Ramp,     ///< linear migration from base to shifted
  Periodic, ///< alternating regimes with period Period
};

/// Parses "abrupt" / "ramp" / "periodic"; returns false on anything else.
bool parseSchedule(const std::string &Name, Schedule &Out);
const char *scheduleName(Schedule Kind);

struct WorkloadStreamOptions {
  Schedule Kind = Schedule::Abrupt;
  /// Number of requests in the stream.
  size_t Requests = 2000;
  uint64_t Seed = 0xD81F7;
  /// The drift key: this input_feature property, sampled at KeyLevel,
  /// splits the universe into the two pools.
  unsigned KeyProperty = 0;
  unsigned KeyLevel = 0;
  /// Abrupt schedule: the regime change happens at
  /// floor(Requests * SwitchFraction).
  double SwitchFraction = 0.5;
  /// Periodic schedule: half-period length in requests (0 = Requests/4).
  size_t Period = 0;
};

class MixedStream;

class WorkloadStream {
public:
  /// Builds the pools and materialises the request sequence. \p Universe
  /// must outlive the stream. Throws std::invalid_argument when the
  /// universe is too small to split or KeyProperty is out of range.
  WorkloadStream(const runtime::TunableProgram &Universe,
                 const WorkloadStreamOptions &Options);

  size_t length() const { return Sequence.size(); }
  /// The universe input id served at request tick \p T.
  size_t inputAt(size_t T) const { return Sequence[T]; }
  const std::vector<size_t> &sequence() const { return Sequence; }

  /// Probability request \p T draws from the shifted pool.
  double mixtureWeight(size_t T) const;
  /// First tick at which the mixture weight becomes nonzero (the earliest
  /// moment drift can exist; Requests when it never does).
  size_t firstShiftTick() const;

  /// Universe input ids below / above the key median.
  const std::vector<size_t> &basePool() const { return Base; }
  const std::vector<size_t> &shiftedPool() const { return Shifted; }
  /// The drift-key value of a universe input (diagnostics).
  double keyOf(size_t Input) const { return Keys[Input]; }

  const WorkloadStreamOptions &options() const { return Opts; }

private:
  WorkloadStreamOptions Opts;
  std::vector<double> Keys;
  std::vector<size_t> Base, Shifted, Sequence;
};

/// One tenant of a MixedStream: a named single-workload stream plus its
/// relative share of the global traffic. The WorkloadStream must outlive
/// the MixedStream.
struct MixedTenantSpec {
  std::string Name;
  const WorkloadStream *Stream = nullptr;
  double Weight = 1.0;
};

struct MixedStreamOptions {
  /// Global ticks in the interleaved sequence.
  size_t Requests = 6000;
  /// Seed of the tenant-interleaving draws (independent of each tenant's
  /// own stream seed).
  uint64_t Seed = 0x5EED;
};

/// A deterministic multi-tenant schedule: several benchmarks' request
/// streams interleaved into one global sequence. Each global tick draws
/// a tenant with probability proportional to its weight, then serves
/// that tenant's next request in its own WorkloadStream order -- so each
/// tenant still experiences exactly its own drift schedule (abrupt shift
/// at ITS switch point, ITS ramp, ...), merely diluted in time by the
/// other tenants' traffic. A tenant whose stream runs out wraps around
/// to its start, keeping any global length well-defined.
///
/// Like WorkloadStream, the whole sequence is materialised at
/// construction from one seed: a daemon run and its in-process parity
/// replay see bit-identical traffic.
class MixedStream {
public:
  struct Tick {
    unsigned Tenant = 0;   ///< index into tenants()
    size_t TenantTick = 0; ///< this tenant's how-many-th request (0-based)
    size_t Input = 0;      ///< universe input id within the tenant's program
  };

  /// Throws std::invalid_argument on an empty tenant list, a null or
  /// empty-named tenant, a duplicate name, a non-positive weight, or
  /// zero requests.
  MixedStream(std::vector<MixedTenantSpec> Tenants,
              const MixedStreamOptions &Options);

  size_t length() const { return Sequence.size(); }
  const Tick &at(size_t T) const { return Sequence[T]; }
  const std::vector<Tick> &sequence() const { return Sequence; }

  const std::vector<MixedTenantSpec> &tenants() const { return Specs; }
  /// Global ticks tenant \p T received.
  size_t tenantRequests(unsigned T) const { return PerTenant[T]; }
  /// The per-tenant subsequence of input ids, in global-tick order --
  /// exactly the tenant's own stream (wrapped), by construction.
  std::vector<size_t> tenantInputs(unsigned T) const;

  const MixedStreamOptions &options() const { return Opts; }

private:
  std::vector<MixedTenantSpec> Specs;
  MixedStreamOptions Opts;
  std::vector<Tick> Sequence;
  std::vector<size_t> PerTenant;
};

} // namespace streams
} // namespace pbt

#endif // PBT_STREAMS_WORKLOADSTREAM_H

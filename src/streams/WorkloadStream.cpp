//===- streams/WorkloadStream.cpp -------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "streams/WorkloadStream.h"

#include "support/Cost.h"
#include "support/Random.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

using namespace pbt;
using namespace pbt::streams;

bool streams::parseSchedule(const std::string &Name, Schedule &Out) {
  if (Name == "abrupt")
    Out = Schedule::Abrupt;
  else if (Name == "ramp")
    Out = Schedule::Ramp;
  else if (Name == "periodic")
    Out = Schedule::Periodic;
  else
    return false;
  return true;
}

const char *streams::scheduleName(Schedule Kind) {
  switch (Kind) {
  case Schedule::Abrupt:
    return "abrupt";
  case Schedule::Ramp:
    return "ramp";
  case Schedule::Periodic:
    return "periodic";
  }
  return "unknown";
}

WorkloadStream::WorkloadStream(const runtime::TunableProgram &Universe,
                               const WorkloadStreamOptions &Options)
    : Opts(Options) {
  size_t N = Universe.numInputs();
  if (N < 2)
    throw std::invalid_argument(
        "workload stream needs a universe of at least two inputs");
  std::vector<runtime::FeatureInfo> Features = Universe.features();
  if (Opts.KeyProperty >= Features.size())
    throw std::invalid_argument("drift-key property " +
                                std::to_string(Opts.KeyProperty) +
                                " out of range (program declares " +
                                std::to_string(Features.size()) + ")");
  if (Opts.KeyLevel >= Features[Opts.KeyProperty].Levels)
    throw std::invalid_argument("drift-key level out of range");
  if (Opts.Requests == 0)
    throw std::invalid_argument("workload stream needs at least one request");
  Opts.SwitchFraction = std::clamp(Opts.SwitchFraction, 0.0, 1.0);
  if (Opts.Period == 0)
    Opts.Period = std::max<size_t>(1, Opts.Requests / 4);

  // The drift key: one cheap feature probe per universe input. Key
  // extraction is stream setup, not serving; its cost is discarded.
  Keys.resize(N);
  for (size_t I = 0; I != N; ++I) {
    support::CostCounter Scratch;
    Keys[I] =
        Universe.extractFeature(I, Opts.KeyProperty, Opts.KeyLevel, Scratch);
  }

  // Split at the key median. Stable order on ties keeps the split (and
  // hence every stream) independent of sort implementation details.
  std::vector<size_t> ByKey(N);
  std::iota(ByKey.begin(), ByKey.end(), 0);
  std::stable_sort(ByKey.begin(), ByKey.end(), [this](size_t A, size_t B) {
    return Keys[A] < Keys[B];
  });
  size_t Half = N / 2;
  Base.assign(ByKey.begin(), ByKey.begin() + static_cast<long>(Half));
  Shifted.assign(ByKey.begin() + static_cast<long>(Half), ByKey.end());

  // Materialise the whole request sequence now: one Rng, two draws per
  // tick, so replays are bit-identical whatever the consumer does.
  support::Rng Rng(Opts.Seed);
  Sequence.resize(Opts.Requests);
  for (size_t T = 0; T != Opts.Requests; ++T) {
    bool FromShifted = Rng.uniform() < mixtureWeight(T);
    const std::vector<size_t> &Pool = FromShifted ? Shifted : Base;
    Sequence[T] = Pool[Rng.index(Pool.size())];
  }
}

double WorkloadStream::mixtureWeight(size_t T) const {
  switch (Opts.Kind) {
  case Schedule::Abrupt: {
    size_t Switch = static_cast<size_t>(
        static_cast<double>(Opts.Requests) * Opts.SwitchFraction);
    return T < Switch ? 0.0 : 1.0;
  }
  case Schedule::Ramp:
    return Opts.Requests > 1
               ? static_cast<double>(T) /
                     static_cast<double>(Opts.Requests - 1)
               : 1.0;
  case Schedule::Periodic:
    return (T / Opts.Period) % 2 == 0 ? 0.0 : 1.0;
  }
  return 0.0;
}

size_t WorkloadStream::firstShiftTick() const {
  for (size_t T = 0; T != Opts.Requests; ++T)
    if (mixtureWeight(T) > 0.0)
      return T;
  return Opts.Requests;
}

MixedStream::MixedStream(std::vector<MixedTenantSpec> Tenants,
                         const MixedStreamOptions &Options)
    : Specs(std::move(Tenants)), Opts(Options) {
  if (Specs.empty())
    throw std::invalid_argument("mixed stream needs at least one tenant");
  if (Opts.Requests == 0)
    throw std::invalid_argument("mixed stream needs at least one request");
  double TotalWeight = 0.0;
  for (size_t I = 0; I != Specs.size(); ++I) {
    const MixedTenantSpec &S = Specs[I];
    if (!S.Stream)
      throw std::invalid_argument("mixed-stream tenant '" + S.Name +
                                  "' has no workload stream");
    if (S.Name.empty())
      throw std::invalid_argument("mixed-stream tenants need names");
    if (!(S.Weight > 0.0))
      throw std::invalid_argument("mixed-stream tenant '" + S.Name +
                                  "' needs a positive weight");
    for (size_t J = 0; J != I; ++J)
      if (Specs[J].Name == S.Name)
        throw std::invalid_argument("duplicate mixed-stream tenant '" +
                                    S.Name + "'");
    TotalWeight += S.Weight;
  }

  // One Rng, one draw per global tick: the interleaving replays
  // bit-identically, and each tenant's subsequence is its own stream's
  // prefix (wrapped) regardless of what the other tenants do.
  support::Rng Rng(Opts.Seed);
  PerTenant.assign(Specs.size(), 0);
  Sequence.resize(Opts.Requests);
  for (size_t T = 0; T != Opts.Requests; ++T) {
    double Draw = Rng.uniform() * TotalWeight;
    unsigned Chosen = 0;
    for (unsigned I = 0; I != Specs.size(); ++I) {
      Draw -= Specs[I].Weight;
      if (Draw < 0.0) {
        Chosen = I;
        break;
      }
    }
    Tick &K = Sequence[T];
    K.Tenant = Chosen;
    K.TenantTick = PerTenant[Chosen]++;
    const WorkloadStream &S = *Specs[Chosen].Stream;
    K.Input = S.inputAt(K.TenantTick % S.length());
  }
}

std::vector<size_t> MixedStream::tenantInputs(unsigned T) const {
  std::vector<size_t> Out;
  Out.reserve(PerTenant[T]);
  for (const Tick &K : Sequence)
    if (K.Tenant == T)
      Out.push_back(K.Input);
  return Out;
}

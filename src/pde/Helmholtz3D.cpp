//===- pde/Helmholtz3D.cpp ---------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "pde/Helmholtz3D.h"
#include "pde/BandedCholesky.h"

#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::pde;

namespace {
/// Face coefficients of the 7-point stencil at one interior node.
struct Faces {
  double E, W, N, S, U, D;
  double sum() const { return E + W + N + S + U + D; }
};
} // namespace

static Faces facesAt(const Grid3D &Beta, size_t I, size_t J, size_t K) {
  double B = Beta.at(I, J, K);
  Faces F;
  F.E = 0.5 * (B + Beta.at(I + 1, J, K));
  F.W = 0.5 * (B + Beta.at(I - 1, J, K));
  F.N = 0.5 * (B + Beta.at(I, J + 1, K));
  F.S = 0.5 * (B + Beta.at(I, J - 1, K));
  F.U = 0.5 * (B + Beta.at(I, J, K + 1));
  F.D = 0.5 * (B + Beta.at(I, J, K - 1));
  return F;
}

void pde::helmholtzApply(const HelmholtzProblem &P, const Grid3D &U,
                         Grid3D &Out, support::CostCounter *Cost) {
  size_t N = U.size();
  assert(P.Beta.size() == N && Out.size() == N && "grid size mismatch");
  double InvH2 = 1.0 / (U.h() * U.h());
  Out.fill(0.0);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      for (size_t K = 1; K + 1 < N; ++K) {
        Faces Fc = facesAt(P.Beta, I, J, K);
        double Center = U.at(I, J, K);
        double Diff = Fc.E * (Center - U.at(I + 1, J, K)) +
                      Fc.W * (Center - U.at(I - 1, J, K)) +
                      Fc.N * (Center - U.at(I, J + 1, K)) +
                      Fc.S * (Center - U.at(I, J - 1, K)) +
                      Fc.U * (Center - U.at(I, J, K + 1)) +
                      Fc.D * (Center - U.at(I, J, K - 1));
        Out.at(I, J, K) = P.Alpha * Center + Diff * InvH2;
      }
  if (Cost) {
    double Interior = static_cast<double>((N - 2) * (N - 2) * (N - 2));
    Cost->addStencil(2.0 * Interior); // 3D stencil ~2x the 2D point cost
  }
}

void pde::helmholtzResidual(const HelmholtzProblem &P, const Grid3D &U,
                            Grid3D &R, support::CostCounter *Cost) {
  helmholtzApply(P, U, R, Cost);
  size_t N = U.size();
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      for (size_t K = 1; K + 1 < N; ++K)
        R.at(I, J, K) = P.F.at(I, J, K) - R.at(I, J, K);
}

double pde::helmholtzResidualNorm(const HelmholtzProblem &P, const Grid3D &U,
                                  support::CostCounter *Cost) {
  Grid3D R(U.size());
  helmholtzResidual(P, U, R, Cost);
  return R.rms();
}

void pde::helmholtzSmoothJacobi(const HelmholtzProblem &P, Grid3D &U,
                                double Omega, unsigned Sweeps,
                                support::CostCounter *Cost) {
  size_t N = U.size();
  double InvH2 = 1.0 / (U.h() * U.h());
  Grid3D Next = U;
  for (unsigned S = 0; S != Sweeps; ++S) {
    for (size_t I = 1; I + 1 < N; ++I)
      for (size_t J = 1; J + 1 < N; ++J)
        for (size_t K = 1; K + 1 < N; ++K) {
          Faces Fc = facesAt(P.Beta, I, J, K);
          double Diag = P.Alpha + Fc.sum() * InvH2;
          double OffDiag = Fc.E * U.at(I + 1, J, K) + Fc.W * U.at(I - 1, J, K) +
                           Fc.N * U.at(I, J + 1, K) + Fc.S * U.at(I, J - 1, K) +
                           Fc.U * U.at(I, J, K + 1) + Fc.D * U.at(I, J, K - 1);
          double GS = (P.F.at(I, J, K) + OffDiag * InvH2) / Diag;
          Next.at(I, J, K) = U.at(I, J, K) + Omega * (GS - U.at(I, J, K));
        }
    std::swap(U.data(), Next.data());
  }
  if (Cost)
    Cost->addStencil(2.0 * static_cast<double>(Sweeps) *
                     static_cast<double>((N - 2) * (N - 2) * (N - 2)));
}

void pde::helmholtzSmoothSOR(const HelmholtzProblem &P, Grid3D &U,
                             double Omega, unsigned Sweeps,
                             support::CostCounter *Cost) {
  size_t N = U.size();
  double InvH2 = 1.0 / (U.h() * U.h());
  for (unsigned S = 0; S != Sweeps; ++S)
    for (size_t I = 1; I + 1 < N; ++I)
      for (size_t J = 1; J + 1 < N; ++J)
        for (size_t K = 1; K + 1 < N; ++K) {
          Faces Fc = facesAt(P.Beta, I, J, K);
          double Diag = P.Alpha + Fc.sum() * InvH2;
          double OffDiag = Fc.E * U.at(I + 1, J, K) + Fc.W * U.at(I - 1, J, K) +
                           Fc.N * U.at(I, J + 1, K) + Fc.S * U.at(I, J - 1, K) +
                           Fc.U * U.at(I, J, K + 1) + Fc.D * U.at(I, J, K - 1);
          double GS = (P.F.at(I, J, K) + OffDiag * InvH2) / Diag;
          U.at(I, J, K) += Omega * (GS - U.at(I, J, K));
        }
  if (Cost)
    Cost->addStencil(2.0 * static_cast<double>(Sweeps) *
                     static_cast<double>((N - 2) * (N - 2) * (N - 2)));
}

Grid3D pde::restrictFullWeighting3D(const Grid3D &Fine,
                                    support::CostCounter *Cost) {
  size_t NF = Fine.size();
  assert(Grid3D::validMultigridSize(NF) && NF >= 5 && "cannot coarsen grid");
  size_t NC = (NF - 1) / 2 + 1;
  Grid3D Coarse(NC);
  for (size_t I = 1; I + 1 < NC; ++I)
    for (size_t J = 1; J + 1 < NC; ++J)
      for (size_t K = 1; K + 1 < NC; ++K) {
        size_t FI = 2 * I, FJ = 2 * J, FK = 2 * K;
        double Sum = 0.0;
        for (int DI = -1; DI <= 1; ++DI)
          for (int DJ = -1; DJ <= 1; ++DJ)
            for (int DK = -1; DK <= 1; ++DK) {
              int Zeros = (DI == 0) + (DJ == 0) + (DK == 0);
              // center 8/64, face 4/64, edge 2/64, corner 1/64
              double W = static_cast<double>(1 << Zeros) / 64.0;
              Sum += W * Fine.at(FI + DI, FJ + DJ, FK + DK);
            }
        Coarse.at(I, J, K) = Sum;
      }
  if (Cost)
    Cost->addStencil(2.0 * static_cast<double>((NC - 2) * (NC - 2) * (NC - 2)));
  return Coarse;
}

Grid3D pde::injectCoarse3D(const Grid3D &Fine) {
  size_t NF = Fine.size();
  assert(Grid3D::validMultigridSize(NF) && NF >= 5 && "cannot coarsen grid");
  size_t NC = (NF - 1) / 2 + 1;
  Grid3D Coarse(NC);
  for (size_t I = 0; I != NC; ++I)
    for (size_t J = 0; J != NC; ++J)
      for (size_t K = 0; K != NC; ++K)
        Coarse.at(I, J, K) = Fine.at(2 * I, 2 * J, 2 * K);
  return Coarse;
}

void pde::prolongAddTrilinear(const Grid3D &Coarse, Grid3D &Fine,
                              support::CostCounter *Cost) {
  size_t NC = Coarse.size();
  assert(Fine.size() == 2 * (NC - 1) + 1 && "grid sizes incompatible");
  for (size_t I = 0; I + 1 < NC; ++I)
    for (size_t J = 0; J + 1 < NC; ++J)
      for (size_t K = 0; K + 1 < NC; ++K) {
        double C[2][2][2];
        for (int A = 0; A != 2; ++A)
          for (int B = 0; B != 2; ++B)
            for (int C2 = 0; C2 != 2; ++C2)
              C[A][B][C2] = Coarse.at(I + A, J + B, K + C2);
        size_t FI = 2 * I, FJ = 2 * J, FK = 2 * K;
        for (int A = 0; A != 2; ++A)
          for (int B = 0; B != 2; ++B)
            for (int C2 = 0; C2 != 2; ++C2) {
              // Trilinear weight of fine node (FI+A, FJ+B, FK+C2) w.r.t.
              // the 8 surrounding coarse nodes.
              double V = 0.0;
              for (int A2 = 0; A2 != 2; ++A2)
                for (int B2 = 0; B2 != 2; ++B2)
                  for (int C3 = 0; C3 != 2; ++C3) {
                    double W = (A == 0 ? (A2 == 0 ? 1.0 : 0.0)
                                       : 0.5) *
                               (B == 0 ? (B2 == 0 ? 1.0 : 0.0)
                                       : 0.5) *
                               (C2 == 0 ? (C3 == 0 ? 1.0 : 0.0)
                                        : 0.5);
                    if (W != 0.0)
                      V += W * C[A2][B2][C3];
                  }
              Fine.at(FI + A, FJ + B, FK + C2) += V;
            }
      }
  if (Cost)
    Cost->addStencil(2.0 * static_cast<double>(Fine.data().size()));
}

static void applySmoother3D(const HelmholtzProblem &P, Grid3D &U,
                            const MultigridOptions &Options, unsigned Sweeps,
                            support::CostCounter *Cost) {
  switch (Options.Smoother) {
  case SmootherKind::Jacobi:
    helmholtzSmoothJacobi(P, U, std::min(Options.Omega, 1.0), Sweeps, Cost);
    return;
  case SmootherKind::GaussSeidel:
    helmholtzSmoothSOR(P, U, 1.0, Sweeps, Cost);
    return;
  case SmootherKind::SOR:
    helmholtzSmoothSOR(P, U, Options.Omega, Sweeps, Cost);
    return;
  }
  assert(false && "unknown smoother");
}

static void mgCycle3D(const HelmholtzProblem &P, Grid3D &U,
                      const MultigridOptions &Options,
                      support::CostCounter *Cost) {
  size_t N = U.size();
  if (N <= Options.CoarsestN || N < 5) {
    U = helmholtzDirectSolve(P, Cost);
    return;
  }
  applySmoother3D(P, U, Options, Options.PreSmooth, Cost);

  Grid3D R(N);
  helmholtzResidual(P, U, R, Cost);
  HelmholtzProblem CoarseP;
  CoarseP.F = restrictFullWeighting3D(R, Cost);
  CoarseP.Beta = injectCoarse3D(P.Beta);
  CoarseP.Alpha = P.Alpha;
  Grid3D CoarseE(CoarseP.F.size());
  for (unsigned M = 0; M != std::max(1u, Options.Mu); ++M)
    mgCycle3D(CoarseP, CoarseE, Options, Cost);
  prolongAddTrilinear(CoarseE, U, Cost);

  applySmoother3D(P, U, Options, Options.PostSmooth, Cost);
}

Grid3D pde::helmholtzMultigridSolve(const HelmholtzProblem &P,
                                    const MultigridOptions &Options,
                                    support::CostCounter *Cost) {
  assert(Grid3D::validMultigridSize(P.F.size()) &&
         "multigrid needs a 2^l + 1 grid");
  Grid3D U(P.F.size());
  for (unsigned C = 0; C != std::max(1u, Options.Cycles); ++C)
    mgCycle3D(P, U, Options, Cost);
  return U;
}

Grid3D pde::helmholtzStationarySolve(const HelmholtzProblem &P,
                                     SolverKind Kind,
                                     const StationaryOptions &Options,
                                     support::CostCounter *Cost) {
  Grid3D U(P.F.size());
  switch (Kind) {
  case SolverKind::Jacobi:
    helmholtzSmoothJacobi(P, U, 1.0, Options.Iterations, Cost);
    break;
  case SolverKind::GaussSeidel:
    helmholtzSmoothSOR(P, U, 1.0, Options.Iterations, Cost);
    break;
  case SolverKind::SOR:
    helmholtzSmoothSOR(P, U, Options.Omega, Options.Iterations, Cost);
    break;
  default:
    assert(false && "not a stationary solver");
  }
  return U;
}

Grid3D pde::helmholtzCGSolve(const HelmholtzProblem &P,
                             const CGOptions &Options,
                             support::CostCounter *Cost) {
  size_t N = P.F.size();
  Grid3D U(N);
  Grid3D R = P.F;
  // Zero the boundary of the initial residual.
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J) {
      R.at(I, J, 0) = R.at(I, J, N - 1) = 0.0;
      R.at(I, 0, J) = R.at(I, N - 1, J) = 0.0;
      R.at(0, I, J) = R.at(N - 1, I, J) = 0.0;
    }
  Grid3D Pv = R;
  Grid3D AP(N);

  auto Dot = [&](const Grid3D &A, const Grid3D &B) {
    double Sum = 0.0;
    for (size_t I = 0; I != A.data().size(); ++I)
      Sum += A.data()[I] * B.data()[I];
    if (Cost)
      Cost->addFlops(2.0 * static_cast<double>(A.data().size()));
    return Sum;
  };

  double RR = Dot(R, R);
  double R0 = std::sqrt(RR);
  if (R0 == 0.0)
    return U;

  for (unsigned It = 0; It != Options.MaxIterations; ++It) {
    helmholtzApply(P, Pv, AP, Cost);
    double PAP = Dot(Pv, AP);
    if (PAP <= 0.0)
      break;
    double Alpha = RR / PAP;
    for (size_t I = 0; I != U.data().size(); ++I) {
      U.data()[I] += Alpha * Pv.data()[I];
      R.data()[I] -= Alpha * AP.data()[I];
    }
    if (Cost)
      Cost->addFlops(4.0 * static_cast<double>(U.data().size()));
    double NewRR = Dot(R, R);
    if (std::sqrt(NewRR) <= Options.RelativeTolerance * R0)
      break;
    double Beta = NewRR / RR;
    RR = NewRR;
    for (size_t I = 0; I != Pv.data().size(); ++I)
      Pv.data()[I] = R.data()[I] + Beta * Pv.data()[I];
    if (Cost)
      Cost->addFlops(2.0 * static_cast<double>(Pv.data().size()));
  }
  return U;
}

Grid3D pde::helmholtzDirectSolve(const HelmholtzProblem &P,
                                 support::CostCounter *Cost) {
  size_t N = P.F.size();
  size_t Interior = N - 2;
  size_t Dim = Interior * Interior * Interior;
  size_t Bandwidth = Interior * Interior;
  double InvH2 = 1.0 / (P.F.h() * P.F.h());

  BandedCholesky A(Dim, Bandwidth);
  auto Id = [&](size_t I, size_t J, size_t K) {
    return ((I - 1) * Interior + (J - 1)) * Interior + (K - 1);
  };
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      for (size_t K = 1; K + 1 < N; ++K) {
        Faces Fc = facesAt(P.Beta, I, J, K);
        size_t Row = Id(I, J, K);
        A.entry(Row, Row) = P.Alpha + Fc.sum() * InvH2;
        if (K > 1)
          A.entry(Row, Id(I, J, K - 1)) = -Fc.D * InvH2;
        if (J > 1)
          A.entry(Row, Id(I, J - 1, K)) = -Fc.S * InvH2;
        if (I > 1)
          A.entry(Row, Id(I - 1, J, K)) = -Fc.W * InvH2;
      }
  bool OK = A.factor(Cost);
  assert(OK && "discrete Helmholtz operator must be SPD");
  (void)OK;

  std::vector<double> B(Dim);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      for (size_t K = 1; K + 1 < N; ++K)
        B[Id(I, J, K)] = P.F.at(I, J, K);
  std::vector<double> X = A.solve(B, Cost);

  Grid3D U(N);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      for (size_t K = 1; K + 1 < N; ++K)
        U.at(I, J, K) = X[Id(I, J, K)];
  return U;
}

Grid3D pde::helmholtzReferenceSolution(const HelmholtzProblem &P) {
  MultigridOptions Heavy;
  Heavy.Cycles = 30;
  Heavy.PreSmooth = 3;
  Heavy.PostSmooth = 3;
  Heavy.Mu = 2;
  Heavy.Smoother = SmootherKind::GaussSeidel;
  return helmholtzMultigridSolve(P, Heavy);
}

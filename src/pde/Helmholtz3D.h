//===- pde/Helmholtz3D.h - Variable-coefficient 3D Helmholtz solvers -------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solvers for the variable-coefficient 3D Helmholtz problem
///
///     alpha * u - div(beta(x) grad u) = f
///
/// on the unit cube with homogeneous Dirichlet boundary (7-point stencil,
/// face coefficients averaged from the node-centred beta field). With
/// alpha >= 0 and beta > 0 the operator is SPD, so the same solver family
/// as Poisson applies: multigrid with tunable cycle shape, stationary
/// iterations, conjugate gradient, and a banded direct solve. This is the
/// substrate of the helmholtz3d benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_PDE_HELMHOLTZ3D_H
#define PBT_PDE_HELMHOLTZ3D_H

#include "pde/Grid3D.h"
#include "pde/SolverOptions.h"
#include "support/Cost.h"

namespace pbt {
namespace pde {

/// One Helmholtz problem instance: right-hand side, coefficient field and
/// the zeroth-order term.
struct HelmholtzProblem {
  Grid3D F;     ///< Right-hand side.
  Grid3D Beta;  ///< Diffusion coefficient, strictly positive.
  double Alpha = 1.0; ///< Zeroth-order coefficient, non-negative.
};

/// Out(interior) = (alpha I - div beta grad) U; boundary zero.
void helmholtzApply(const HelmholtzProblem &P, const Grid3D &U, Grid3D &Out,
                    support::CostCounter *Cost = nullptr);

/// R = F - A U.
void helmholtzResidual(const HelmholtzProblem &P, const Grid3D &U, Grid3D &R,
                       support::CostCounter *Cost = nullptr);

/// RMS of the residual.
double helmholtzResidualNorm(const HelmholtzProblem &P, const Grid3D &U,
                             support::CostCounter *Cost = nullptr);

/// Damped Jacobi sweeps (0 < Omega <= 1).
void helmholtzSmoothJacobi(const HelmholtzProblem &P, Grid3D &U, double Omega,
                           unsigned Sweeps,
                           support::CostCounter *Cost = nullptr);

/// SOR sweeps in lexicographic order; Omega = 1 is Gauss-Seidel.
void helmholtzSmoothSOR(const HelmholtzProblem &P, Grid3D &U, double Omega,
                        unsigned Sweeps, support::CostCounter *Cost = nullptr);

/// Full-weighting restriction of a 3D grid (27-point weights).
Grid3D restrictFullWeighting3D(const Grid3D &Fine,
                               support::CostCounter *Cost = nullptr);

/// Injection restriction (used for coefficient fields).
Grid3D injectCoarse3D(const Grid3D &Fine);

/// Adds the trilinear prolongation of \p Coarse into \p Fine.
void prolongAddTrilinear(const Grid3D &Coarse, Grid3D &Fine,
                         support::CostCounter *Cost = nullptr);

/// Full multigrid solve from a zero guess.
Grid3D helmholtzMultigridSolve(const HelmholtzProblem &P,
                               const MultigridOptions &Options,
                               support::CostCounter *Cost = nullptr);

/// Stationary iterative solve from a zero guess.
Grid3D helmholtzStationarySolve(const HelmholtzProblem &P, SolverKind Kind,
                                const StationaryOptions &Options,
                                support::CostCounter *Cost = nullptr);

/// Conjugate gradient solve from a zero guess.
Grid3D helmholtzCGSolve(const HelmholtzProblem &P, const CGOptions &Options,
                        support::CostCounter *Cost = nullptr);

/// Banded-Cholesky direct solve (bandwidth (N-2)^2; use on small grids).
Grid3D helmholtzDirectSolve(const HelmholtzProblem &P,
                            support::CostCounter *Cost = nullptr);

/// Ground-truth solution for accuracy metrics (heavy W-cycle multigrid).
Grid3D helmholtzReferenceSolution(const HelmholtzProblem &P);

} // namespace pde
} // namespace pbt

#endif // PBT_PDE_HELMHOLTZ3D_H

//===- pde/SolverOptions.h - Shared solver configuration types -------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solver/smoother enumerations and option structs shared by the poisson2d
/// and helmholtz3d substrates. These map one-to-one onto the algorithmic
/// choices the paper's PDE benchmarks expose to the autotuner: "multigrid,
/// where cycle shapes are determined by the autotuner, and a number of
/// iterative and direct solvers".
///
//===----------------------------------------------------------------------===//

#ifndef PBT_PDE_SOLVEROPTIONS_H
#define PBT_PDE_SOLVEROPTIONS_H

namespace pbt {
namespace pde {

/// Top-level solver families (the either...or of the PDE benchmarks).
enum class SolverKind : unsigned {
  Multigrid = 0,
  Jacobi = 1,
  GaussSeidel = 2,
  SOR = 3,
  ConjugateGradient = 4,
  Direct = 5,
};
inline constexpr unsigned NumSolverKinds = 6;

/// Smoother used inside multigrid cycles.
enum class SmootherKind : unsigned {
  Jacobi = 0,
  GaussSeidel = 1,
  SOR = 2,
};
inline constexpr unsigned NumSmootherKinds = 3;

/// Multigrid cycle description. Mu = 1 is a V-cycle, Mu = 2 a W-cycle;
/// together with the pre/post smoothing counts this is the "cycle shape"
/// the autotuner controls.
struct MultigridOptions {
  unsigned Cycles = 4;
  unsigned PreSmooth = 2;
  unsigned PostSmooth = 2;
  unsigned Mu = 1;
  SmootherKind Smoother = SmootherKind::GaussSeidel;
  /// Relaxation factor (used when Smoother == SOR; Jacobi uses damping
  /// min(Omega, 1)).
  double Omega = 1.5;
  /// Recursion stops at this grid size; the coarsest system is solved
  /// directly.
  unsigned CoarsestN = 5;
};

/// Stationary iterative solve (Jacobi / Gauss-Seidel / SOR at top level).
struct StationaryOptions {
  unsigned Iterations = 100;
  double Omega = 1.5; // SOR only
};

/// Conjugate gradient options. The iteration cap is the tunable; the
/// tolerance provides early exit when the solve converges sooner.
struct CGOptions {
  unsigned MaxIterations = 200;
  double RelativeTolerance = 1e-12;
};

} // namespace pde
} // namespace pbt

#endif // PBT_PDE_SOLVEROPTIONS_H

//===- pde/Grid2D.h - Square 2D grids for PDE solvers ----------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A square (N x N) node-centred grid on the unit square with Dirichlet
/// boundary, N = 2^l + 1 so multigrid coarsening is exact. Used by the
/// poisson2d benchmark substrate.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_PDE_GRID2D_H
#define PBT_PDE_GRID2D_H

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace pbt {
namespace pde {

/// Node-centred square grid storing one double per node.
class Grid2D {
public:
  Grid2D() = default;
  explicit Grid2D(size_t N, double Fill = 0.0) : N(N), V(N * N, Fill) {
    assert(N >= 3 && "grid too small");
  }

  size_t size() const { return N; }
  /// Mesh spacing on the unit square.
  double h() const { return 1.0 / static_cast<double>(N - 1); }

  double &at(size_t I, size_t J) {
    assert(I < N && J < N && "grid index out of range");
    return V[I * N + J];
  }
  double at(size_t I, size_t J) const {
    assert(I < N && J < N && "grid index out of range");
    return V[I * N + J];
  }

  void fill(double X) { std::fill(V.begin(), V.end(), X); }

  /// RMS over all nodes (boundary included; boundary values are zero for
  /// every grid in this project).
  double rms() const {
    double Sum = 0.0;
    for (double X : V)
      Sum += X * X;
    return std::sqrt(Sum / static_cast<double>(V.size()));
  }

  /// RMS of (this - Other).
  double rmsDistance(const Grid2D &Other) const {
    assert(N == Other.N && "grid size mismatch");
    double Sum = 0.0;
    for (size_t I = 0; I != V.size(); ++I) {
      double D = V[I] - Other.V[I];
      Sum += D * D;
    }
    return std::sqrt(Sum / static_cast<double>(V.size()));
  }

  const std::vector<double> &data() const { return V; }
  std::vector<double> &data() { return V; }

  /// True when N = 2^l + 1 for some l >= 1.
  static bool validMultigridSize(size_t N) {
    if (N < 3)
      return false;
    size_t M = N - 1;
    return (M & (M - 1)) == 0;
  }

private:
  size_t N = 0;
  std::vector<double> V;
};

} // namespace pde
} // namespace pbt

#endif // PBT_PDE_GRID2D_H

//===- pde/Poisson2D.cpp -----------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "pde/Poisson2D.h"
#include "pde/BandedCholesky.h"

#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::pde;

void pde::poissonApply(const Grid2D &U, Grid2D &Out,
                       support::CostCounter *Cost) {
  size_t N = U.size();
  assert(Out.size() == N && "grid size mismatch");
  double InvH2 = 1.0 / (U.h() * U.h());
  Out.fill(0.0);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      Out.at(I, J) = (4.0 * U.at(I, J) - U.at(I - 1, J) - U.at(I + 1, J) -
                      U.at(I, J - 1) - U.at(I, J + 1)) *
                     InvH2;
  if (Cost)
    Cost->addStencil(static_cast<double>((N - 2) * (N - 2)));
}

void pde::poissonResidual(const Grid2D &U, const Grid2D &F, Grid2D &R,
                          support::CostCounter *Cost) {
  size_t N = U.size();
  assert(F.size() == N && R.size() == N && "grid size mismatch");
  double InvH2 = 1.0 / (U.h() * U.h());
  R.fill(0.0);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      R.at(I, J) = F.at(I, J) - (4.0 * U.at(I, J) - U.at(I - 1, J) -
                                 U.at(I + 1, J) - U.at(I, J - 1) -
                                 U.at(I, J + 1)) *
                                    InvH2;
  if (Cost)
    Cost->addStencil(static_cast<double>((N - 2) * (N - 2)));
}

double pde::poissonResidualNorm(const Grid2D &U, const Grid2D &F,
                                support::CostCounter *Cost) {
  Grid2D R(U.size());
  poissonResidual(U, F, R, Cost);
  return R.rms();
}

void pde::smoothJacobi(Grid2D &U, const Grid2D &F, double Omega,
                       unsigned Sweeps, support::CostCounter *Cost) {
  size_t N = U.size();
  assert(F.size() == N && "grid size mismatch");
  double H2 = U.h() * U.h();
  Grid2D Next = U;
  for (unsigned S = 0; S != Sweeps; ++S) {
    for (size_t I = 1; I + 1 < N; ++I)
      for (size_t J = 1; J + 1 < N; ++J) {
        double GS = (H2 * F.at(I, J) + U.at(I - 1, J) + U.at(I + 1, J) +
                     U.at(I, J - 1) + U.at(I, J + 1)) /
                    4.0;
        Next.at(I, J) = U.at(I, J) + Omega * (GS - U.at(I, J));
      }
    std::swap(U.data(), Next.data());
  }
  if (Cost)
    Cost->addStencil(static_cast<double>(Sweeps) *
                     static_cast<double>((N - 2) * (N - 2)));
}

void pde::smoothSOR(Grid2D &U, const Grid2D &F, double Omega, unsigned Sweeps,
                    support::CostCounter *Cost) {
  size_t N = U.size();
  assert(F.size() == N && "grid size mismatch");
  double H2 = U.h() * U.h();
  for (unsigned S = 0; S != Sweeps; ++S)
    for (size_t I = 1; I + 1 < N; ++I)
      for (size_t J = 1; J + 1 < N; ++J) {
        double GS = (H2 * F.at(I, J) + U.at(I - 1, J) + U.at(I + 1, J) +
                     U.at(I, J - 1) + U.at(I, J + 1)) /
                    4.0;
        U.at(I, J) += Omega * (GS - U.at(I, J));
      }
  if (Cost)
    Cost->addStencil(static_cast<double>(Sweeps) *
                     static_cast<double>((N - 2) * (N - 2)));
}

Grid2D pde::restrictFullWeighting(const Grid2D &Fine,
                                  support::CostCounter *Cost) {
  size_t NF = Fine.size();
  assert(Grid2D::validMultigridSize(NF) && NF >= 5 && "cannot coarsen grid");
  size_t NC = (NF - 1) / 2 + 1;
  Grid2D Coarse(NC);
  for (size_t I = 1; I + 1 < NC; ++I)
    for (size_t J = 1; J + 1 < NC; ++J) {
      size_t FI = 2 * I, FJ = 2 * J;
      Coarse.at(I, J) =
          (4.0 * Fine.at(FI, FJ) + 2.0 * (Fine.at(FI - 1, FJ) +
                                          Fine.at(FI + 1, FJ) +
                                          Fine.at(FI, FJ - 1) +
                                          Fine.at(FI, FJ + 1)) +
           Fine.at(FI - 1, FJ - 1) + Fine.at(FI - 1, FJ + 1) +
           Fine.at(FI + 1, FJ - 1) + Fine.at(FI + 1, FJ + 1)) /
          16.0;
    }
  if (Cost)
    Cost->addStencil(static_cast<double>((NC - 2) * (NC - 2)));
  return Coarse;
}

void pde::prolongAddBilinear(const Grid2D &Coarse, Grid2D &Fine,
                             support::CostCounter *Cost) {
  size_t NC = Coarse.size();
  size_t NF = Fine.size();
  assert(NF == 2 * (NC - 1) + 1 && "grid sizes incompatible");
  for (size_t I = 0; I + 1 < NC; ++I)
    for (size_t J = 0; J + 1 < NC; ++J) {
      double C00 = Coarse.at(I, J), C01 = Coarse.at(I, J + 1);
      double C10 = Coarse.at(I + 1, J), C11 = Coarse.at(I + 1, J + 1);
      size_t FI = 2 * I, FJ = 2 * J;
      Fine.at(FI, FJ) += C00;
      Fine.at(FI, FJ + 1) += 0.5 * (C00 + C01);
      Fine.at(FI + 1, FJ) += 0.5 * (C00 + C10);
      Fine.at(FI + 1, FJ + 1) += 0.25 * (C00 + C01 + C10 + C11);
    }
  // Top/right edges (even indices already covered except the last line,
  // which is boundary and stays zero for Dirichlet problems).
  if (Cost)
    Cost->addStencil(static_cast<double>(NF * NF));
}

/// Applies the configured smoother.
static void applySmoother(Grid2D &U, const Grid2D &F,
                          const MultigridOptions &Options, unsigned Sweeps,
                          support::CostCounter *Cost) {
  switch (Options.Smoother) {
  case SmootherKind::Jacobi:
    smoothJacobi(U, F, std::min(Options.Omega, 1.0), Sweeps, Cost);
    return;
  case SmootherKind::GaussSeidel:
    smoothSOR(U, F, 1.0, Sweeps, Cost);
    return;
  case SmootherKind::SOR:
    smoothSOR(U, F, Options.Omega, Sweeps, Cost);
    return;
  }
  assert(false && "unknown smoother");
}

/// Exact solve on the coarsest grid via the banded direct solver.
static void coarseSolve(Grid2D &U, const Grid2D &F,
                        support::CostCounter *Cost) {
  U = directSolve(F, Cost);
}

/// One mu-cycle at the current level; recurses towards CoarsestN.
static void mgCycle(Grid2D &U, const Grid2D &F,
                    const MultigridOptions &Options,
                    support::CostCounter *Cost) {
  size_t N = U.size();
  if (N <= Options.CoarsestN || N < 5) {
    coarseSolve(U, F, Cost);
    return;
  }
  applySmoother(U, F, Options, Options.PreSmooth, Cost);

  Grid2D R(N);
  poissonResidual(U, F, R, Cost);
  Grid2D CoarseR = restrictFullWeighting(R, Cost);
  Grid2D CoarseE(CoarseR.size());
  for (unsigned M = 0; M != std::max(1u, Options.Mu); ++M)
    mgCycle(CoarseE, CoarseR, Options, Cost);
  prolongAddBilinear(CoarseE, U, Cost);

  applySmoother(U, F, Options, Options.PostSmooth, Cost);
}

Grid2D pde::multigridSolve(const Grid2D &F, const MultigridOptions &Options,
                           support::CostCounter *Cost) {
  assert(Grid2D::validMultigridSize(F.size()) &&
         "multigrid needs a 2^l + 1 grid");
  Grid2D U(F.size());
  for (unsigned C = 0; C != std::max(1u, Options.Cycles); ++C)
    mgCycle(U, F, Options, Cost);
  return U;
}

Grid2D pde::stationarySolve(const Grid2D &F, SolverKind Kind,
                            const StationaryOptions &Options,
                            support::CostCounter *Cost) {
  Grid2D U(F.size());
  switch (Kind) {
  case SolverKind::Jacobi:
    smoothJacobi(U, F, 1.0, Options.Iterations, Cost);
    break;
  case SolverKind::GaussSeidel:
    smoothSOR(U, F, 1.0, Options.Iterations, Cost);
    break;
  case SolverKind::SOR:
    smoothSOR(U, F, Options.Omega, Options.Iterations, Cost);
    break;
  default:
    assert(false && "not a stationary solver");
  }
  return U;
}

Grid2D pde::cgSolve(const Grid2D &F, const CGOptions &Options,
                    support::CostCounter *Cost) {
  size_t N = F.size();
  Grid2D U(N);
  Grid2D R = F; // residual of the zero guess; boundary entries are zero
  for (size_t I = 0; I != N; ++I) {
    R.at(I, 0) = R.at(0, I) = 0.0;
    R.at(I, N - 1) = R.at(N - 1, I) = 0.0;
  }
  Grid2D P = R;
  Grid2D AP(N);

  auto Dot = [&](const Grid2D &A, const Grid2D &B) {
    double Sum = 0.0;
    for (size_t I = 0; I != A.data().size(); ++I)
      Sum += A.data()[I] * B.data()[I];
    if (Cost)
      Cost->addFlops(2.0 * static_cast<double>(A.data().size()));
    return Sum;
  };

  double RR = Dot(R, R);
  double R0 = std::sqrt(RR);
  if (R0 == 0.0)
    return U;

  for (unsigned It = 0; It != Options.MaxIterations; ++It) {
    poissonApply(P, AP, Cost);
    double PAP = Dot(P, AP);
    if (PAP <= 0.0)
      break; // Numerical breakdown; A is SPD so this is roundoff.
    double Alpha = RR / PAP;
    for (size_t I = 0; I != U.data().size(); ++I) {
      U.data()[I] += Alpha * P.data()[I];
      R.data()[I] -= Alpha * AP.data()[I];
    }
    if (Cost)
      Cost->addFlops(4.0 * static_cast<double>(U.data().size()));
    double NewRR = Dot(R, R);
    if (std::sqrt(NewRR) <= Options.RelativeTolerance * R0)
      break;
    double Beta = NewRR / RR;
    RR = NewRR;
    for (size_t I = 0; I != P.data().size(); ++I)
      P.data()[I] = R.data()[I] + Beta * P.data()[I];
    if (Cost)
      Cost->addFlops(2.0 * static_cast<double>(P.data().size()));
  }
  return U;
}

Grid2D pde::directSolve(const Grid2D &F, support::CostCounter *Cost) {
  size_t N = F.size();
  size_t Interior = N - 2;
  size_t Dim = Interior * Interior;
  double InvH2 = 1.0 / (F.h() * F.h());

  // Assemble -laplace with lexicographic interior numbering; bandwidth is
  // one grid row.
  BandedCholesky A(Dim, Interior);
  auto Id = [&](size_t I, size_t J) { return (I - 1) * Interior + (J - 1); };
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J) {
      size_t Row = Id(I, J);
      A.entry(Row, Row) = 4.0 * InvH2;
      if (J > 1)
        A.entry(Row, Id(I, J - 1)) = -InvH2;
      if (I > 1)
        A.entry(Row, Id(I - 1, J)) = -InvH2;
    }
  bool OK = A.factor(Cost);
  assert(OK && "discrete Poisson operator must be SPD");
  (void)OK;

  std::vector<double> B(Dim);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      B[Id(I, J)] = F.at(I, J);
  std::vector<double> X = A.solve(B, Cost);

  Grid2D U(N);
  for (size_t I = 1; I + 1 < N; ++I)
    for (size_t J = 1; J + 1 < N; ++J)
      U.at(I, J) = X[Id(I, J)];
  return U;
}

Grid2D pde::referenceSolution(const Grid2D &F) {
  MultigridOptions Heavy;
  Heavy.Cycles = 30;
  Heavy.PreSmooth = 3;
  Heavy.PostSmooth = 3;
  Heavy.Mu = 2;
  Heavy.Smoother = SmootherKind::GaussSeidel;
  return multigridSolve(F, Heavy);
}

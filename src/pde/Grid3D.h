//===- pde/Grid3D.h - Cubic 3D grids for PDE solvers -----------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cubic (N x N x N) node-centred grid on the unit cube with Dirichlet
/// boundary, N = 2^l + 1. Used by the helmholtz3d benchmark substrate.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_PDE_GRID3D_H
#define PBT_PDE_GRID3D_H

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace pbt {
namespace pde {

/// Node-centred cubic grid storing one double per node.
class Grid3D {
public:
  Grid3D() = default;
  explicit Grid3D(size_t N, double Fill = 0.0) : N(N), V(N * N * N, Fill) {
    assert(N >= 3 && "grid too small");
  }

  size_t size() const { return N; }
  double h() const { return 1.0 / static_cast<double>(N - 1); }

  double &at(size_t I, size_t J, size_t K) {
    assert(I < N && J < N && K < N && "grid index out of range");
    return V[(I * N + J) * N + K];
  }
  double at(size_t I, size_t J, size_t K) const {
    assert(I < N && J < N && K < N && "grid index out of range");
    return V[(I * N + J) * N + K];
  }

  void fill(double X) { std::fill(V.begin(), V.end(), X); }

  double rms() const {
    double Sum = 0.0;
    for (double X : V)
      Sum += X * X;
    return std::sqrt(Sum / static_cast<double>(V.size()));
  }

  double rmsDistance(const Grid3D &Other) const {
    assert(N == Other.N && "grid size mismatch");
    double Sum = 0.0;
    for (size_t I = 0; I != V.size(); ++I) {
      double D = V[I] - Other.V[I];
      Sum += D * D;
    }
    return std::sqrt(Sum / static_cast<double>(V.size()));
  }

  const std::vector<double> &data() const { return V; }
  std::vector<double> &data() { return V; }

  static bool validMultigridSize(size_t N) {
    if (N < 3)
      return false;
    size_t M = N - 1;
    return (M & (M - 1)) == 0;
  }

private:
  size_t N = 0;
  std::vector<double> V;
};

} // namespace pde
} // namespace pbt

#endif // PBT_PDE_GRID3D_H

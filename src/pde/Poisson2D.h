//===- pde/Poisson2D.h - 2D Poisson solvers ---------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solvers for the 2D Poisson problem -laplace(u) = f on the unit square
/// with homogeneous Dirichlet boundary, discretised with the standard
/// 5-point stencil. This is the substrate of the poisson2d benchmark: the
/// autotuner chooses among multigrid (with tunable cycle shape), the
/// stationary iterations, conjugate gradient, and a banded-Cholesky direct
/// solve, all charging work to the deterministic cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_PDE_POISSON2D_H
#define PBT_PDE_POISSON2D_H

#include "pde/Grid2D.h"
#include "pde/SolverOptions.h"
#include "support/Cost.h"

namespace pbt {
namespace pde {

/// Out(interior) = (-laplace U)(interior) = (4u - u_N - u_S - u_E - u_W)/h^2.
/// Boundary nodes of Out are set to zero.
void poissonApply(const Grid2D &U, Grid2D &Out,
                  support::CostCounter *Cost = nullptr);

/// R = F - A U on the interior; boundary zero.
void poissonResidual(const Grid2D &U, const Grid2D &F, Grid2D &R,
                     support::CostCounter *Cost = nullptr);

/// RMS of the residual over all nodes.
double poissonResidualNorm(const Grid2D &U, const Grid2D &F,
                           support::CostCounter *Cost = nullptr);

/// \p Sweeps damped-Jacobi sweeps (damping \p Omega, 0 < Omega <= 1).
void smoothJacobi(Grid2D &U, const Grid2D &F, double Omega, unsigned Sweeps,
                  support::CostCounter *Cost = nullptr);

/// \p Sweeps SOR sweeps in lexicographic order; Omega = 1 is Gauss-Seidel.
void smoothSOR(Grid2D &U, const Grid2D &F, double Omega, unsigned Sweeps,
               support::CostCounter *Cost = nullptr);

/// Full-weighting restriction of \p Fine (size 2m+1) onto a size m+1 grid.
Grid2D restrictFullWeighting(const Grid2D &Fine,
                             support::CostCounter *Cost = nullptr);

/// Adds the bilinear prolongation of \p Coarse into \p Fine.
void prolongAddBilinear(const Grid2D &Coarse, Grid2D &Fine,
                        support::CostCounter *Cost = nullptr);

/// Full multigrid solve from a zero initial guess.
Grid2D multigridSolve(const Grid2D &F, const MultigridOptions &Options,
                      support::CostCounter *Cost = nullptr);

/// Stationary iterative solve from a zero guess.
Grid2D stationarySolve(const Grid2D &F, SolverKind Kind,
                       const StationaryOptions &Options,
                       support::CostCounter *Cost = nullptr);

/// Conjugate gradient solve from a zero guess.
Grid2D cgSolve(const Grid2D &F, const CGOptions &Options,
               support::CostCounter *Cost = nullptr);

/// Banded-Cholesky direct solve.
Grid2D directSolve(const Grid2D &F, support::CostCounter *Cost = nullptr);

/// Reference solution used as ground truth for accuracy metrics: heavy
/// W-cycle multigrid driven (near) to discretisation-independent machine
/// precision. Not charged to any cost counter.
Grid2D referenceSolution(const Grid2D &F);

} // namespace pde
} // namespace pbt

#endif // PBT_PDE_POISSON2D_H

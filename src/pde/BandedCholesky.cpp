//===- pde/BandedCholesky.cpp ------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "pde/BandedCholesky.h"

#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::pde;

BandedCholesky::BandedCholesky(size_t N, size_t Bandwidth)
    : N(N), BW(Bandwidth), Band(N * (Bandwidth + 1), 0.0) {
  assert(N >= 1 && "empty system");
}

double &BandedCholesky::entry(size_t I, size_t J) {
  assert(I < N && J <= I && I - J <= BW && "outside stored band");
  return Band[J * (BW + 1) + (I - J)];
}

double BandedCholesky::entry(size_t I, size_t J) const {
  assert(I < N && J <= I && I - J <= BW && "outside stored band");
  return Band[J * (BW + 1) + (I - J)];
}

bool BandedCholesky::factor(support::CostCounter *Cost) {
  // Banded Cholesky: A = L L^T computed column by column in place.
  double Flops = 0.0;
  for (size_t J = 0; J != N; ++J) {
    size_t KBegin = J > BW ? J - BW : 0;
    // Diagonal update.
    double D = entry(J, J);
    for (size_t K = KBegin; K != J; ++K) {
      double L = entry(J, K);
      D -= L * L;
    }
    Flops += 2.0 * static_cast<double>(J - KBegin);
    if (D <= 0.0)
      return false;
    D = std::sqrt(D);
    entry(J, J) = D;
    // Column update below the diagonal.
    size_t IEnd = std::min(N, J + BW + 1);
    for (size_t I = J + 1; I < IEnd; ++I) {
      double S = entry(I, J);
      size_t KStart = std::max(KBegin, I > BW ? I - BW : 0);
      for (size_t K = KStart; K != J; ++K)
        S -= entry(I, K) * entry(J, K);
      entry(I, J) = S / D;
      Flops += 2.0 * static_cast<double>(J - KStart) + 1.0;
    }
  }
  if (Cost)
    Cost->addFlops(Flops);
  Factored = true;
  return true;
}

std::vector<double>
BandedCholesky::solve(const std::vector<double> &B,
                      support::CostCounter *Cost) const {
  assert(Factored && "solve() before factor()");
  assert(B.size() == N && "right-hand side size mismatch");
  std::vector<double> X = B;
  double Flops = 0.0;
  // Forward substitution: L y = b.
  for (size_t I = 0; I != N; ++I) {
    size_t KBegin = I > BW ? I - BW : 0;
    double S = X[I];
    for (size_t K = KBegin; K != I; ++K)
      S -= entry(I, K) * X[K];
    X[I] = S / entry(I, I);
    Flops += 2.0 * static_cast<double>(I - KBegin) + 1.0;
  }
  // Backward substitution: L^T x = y.
  for (size_t IPlus1 = N; IPlus1 != 0; --IPlus1) {
    size_t I = IPlus1 - 1;
    size_t KEnd = std::min(N, I + BW + 1);
    double S = X[I];
    for (size_t K = I + 1; K < KEnd; ++K)
      S -= entry(K, I) * X[K];
    X[I] = S / entry(I, I);
    Flops += 2.0 * static_cast<double>(KEnd - I - 1) + 1.0;
  }
  if (Cost)
    Cost->addFlops(Flops);
  return X;
}

//===- pde/BandedCholesky.h - Banded SPD direct solver ---------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cholesky factorisation and solve for symmetric positive definite banded
/// systems, the "direct solver" choice of the poisson2d and helmholtz3d
/// benchmarks. Storage is the standard lower-band layout: column j holds
/// entries A(j..j+bw, j).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_PDE_BANDEDCHOLESKY_H
#define PBT_PDE_BANDEDCHOLESKY_H

#include "support/Cost.h"

#include <cstddef>
#include <vector>

namespace pbt {
namespace pde {

/// SPD banded matrix in lower-band storage plus its Cholesky factor.
class BandedCholesky {
public:
  /// Creates an all-zero band matrix of dimension \p N with lower
  /// bandwidth \p Bandwidth (number of sub-diagonals stored).
  BandedCholesky(size_t N, size_t Bandwidth);

  size_t dim() const { return N; }
  size_t bandwidth() const { return BW; }

  /// Accesses A(I, J) for I >= J, I - J <= bandwidth.
  double &entry(size_t I, size_t J);
  double entry(size_t I, size_t J) const;

  /// In-place Cholesky factorisation. Charges ~N*BW^2 flops.
  /// \returns false if the matrix is not positive definite.
  bool factor(support::CostCounter *Cost = nullptr);

  /// Solves A x = b using the factor (factor() must have succeeded).
  std::vector<double> solve(const std::vector<double> &B,
                            support::CostCounter *Cost = nullptr) const;

  bool factored() const { return Factored; }

private:
  size_t N;
  size_t BW;
  /// Band[J * (BW + 1) + (I - J)] = A(I, J).
  std::vector<double> Band;
  bool Factored = false;
};

} // namespace pde
} // namespace pbt

#endif // PBT_PDE_BANDEDCHOLESKY_H

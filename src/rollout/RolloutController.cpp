//===- rollout/RolloutController.cpp - Staged epoch rollout machine --------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "rollout/RolloutController.h"

#include "runtime/AdaptiveService.h"
#include "runtime/SubsetProgram.h"
#include "support/Cost.h"
#include "support/Random.h"

#include <algorithm>
#include <utility>

namespace pbt {
namespace rollout {

using serialize::LoadStatus;

//===----------------------------------------------------------------------===//
// Replica
//===----------------------------------------------------------------------===//

LoadStatus Replica::adoptText(uint64_t NewEpoch, const std::string &Text) {
  serialize::TrainedModel Model;
  LoadStatus St = serialize::loadModel(Text, Model);
  if (!St) {
    // A checksum-valid image that fails to parse is corruption the
    // checksum cannot see (e.g. a bad publisher); refuse it the same way.
    ++TornPrevented;
    return LoadStatus::failure("epoch " + std::to_string(NewEpoch) +
                               " image does not parse: " + St.Error);
  }
  auto Next = std::make_unique<runtime::PredictionService>(std::move(Model));
  St = Next->bind(Program);
  if (!St)
    return LoadStatus::failure("epoch " + std::to_string(NewEpoch) +
                               " does not fit the bound program: " + St.Error);
  Service = std::move(Next);
  Epoch = NewEpoch;
  ++Swaps;
  return LoadStatus::success();
}

LoadStatus Replica::sync() {
  ++Syncs;
  uint64_t Pointed = 0;
  LoadStatus St = store::readCurrentPointer(StoreDir, Pointed);
  if (!St)
    return St;
  if (Pointed == 0 || Pointed == Epoch)
    return LoadStatus::success();
  store::VerifiedModel V;
  St = store::loadCurrentVerified(StoreDir, V);
  if (!St)
    return St; // nothing loadable; keep serving the held epoch
  TornPrevented += V.RejectedLoads;
  if (V.Epoch == Epoch)
    return LoadStatus::success(); // fallback landed on what we serve
  return adoptText(V.Epoch, V.Text);
}

LoadStatus Replica::adopt(uint64_t NewEpoch) {
  if (NewEpoch == Epoch)
    return LoadStatus::success();
  std::string Text;
  LoadStatus St = store::loadEpochVerified(StoreDir, NewEpoch, Text);
  if (!St) {
    ++TornPrevented;
    return St;
  }
  return adoptText(NewEpoch, Text);
}

//===----------------------------------------------------------------------===//
// RolloutController
//===----------------------------------------------------------------------===//

RolloutController::RolloutController(const runtime::TunableProgram &Program,
                                     std::string StoreDir,
                                     RolloutOptions Options)
    : Program(Program), Store(StoreDir), Opts(Options) {
  if (Opts.Replicas == 0)
    Opts.Replicas = 1;
  for (size_t I = 0; I != Opts.Replicas; ++I)
    Fleet.push_back(std::make_unique<Replica>(Program, StoreDir));

  // Seeded shadow sample: distinct inputs via partial Fisher-Yates so
  // the canary verdict is reproducible per (seed, program).
  size_t N = Program.numInputs();
  std::vector<size_t> All(N);
  for (size_t I = 0; I != N; ++I)
    All[I] = I;
  size_t Want = std::min(Opts.ShadowSample == 0 ? N : Opts.ShadowSample, N);
  support::Rng Rng(Opts.ShadowSeed);
  for (size_t I = 0; I != Want; ++I) {
    size_t J = I + Rng.index(N - I);
    std::swap(All[I], All[J]);
  }
  All.resize(Want);
  Sample = std::move(All);
}

double RolloutController::shadowScore(runtime::PredictionService &Service) {
  std::lock_guard<std::mutex> Lock(Mu);
  return shadowScoreLocked(Service);
}

double
RolloutController::shadowScoreLocked(runtime::PredictionService &Service) {
  double Total = 0.0;
  for (size_t Input : Sample) {
    runtime::PredictionService::Decision D = Service.decide(Input);
    Total += Program.runOnce(Input, *D.Config).TimeUnits;
  }
  return Sample.empty() ? 0.0 : Total / static_cast<double>(Sample.size());
}

LoadStatus RolloutController::syncReplicas() {
  std::lock_guard<std::mutex> Lock(Mu);
  return syncReplicasLocked();
}

LoadStatus RolloutController::syncReplicasLocked() {
  for (auto &R : Fleet) {
    LoadStatus St = R->sync();
    if (!St)
      return St;
  }
  return LoadStatus::success();
}

LoadStatus RolloutController::start(const serialize::TrainedModel &Initial) {
  std::lock_guard<std::mutex> Lock(Mu);
  LoadStatus St = Store.open();
  if (!St)
    return St;
  if (Store.currentEpoch() == 0) {
    serialize::TrainedModel Seed;
    St = serialize::loadModel(serialize::serializeModel(Initial), Seed);
    if (!St)
      return St;
    St = serialize::validateAgainst(Seed, Program);
    if (!St)
      return St;
    // The bootstrap epoch: Meta.Epoch must match the store number the
    // image lands as, so stamp it before serializing. A store fresh or
    // recovered-to-empty always starts at the next free number.
    uint64_t Epoch = Store.records().empty()
                         ? 1
                         : Store.records().back().Epoch + 1;
    Seed.Meta.Epoch = Epoch;
    uint64_t Landed = 0;
    St = Store.publish(serialize::serializeModel(Seed), Landed);
    if (!St)
      return St;
    St = Store.promote(Landed);
    if (!St)
      return St;
  }
  return syncReplicasLocked();
}

LoadStatus RolloutController::resume() {
  std::lock_guard<std::mutex> Lock(Mu);
  // Re-running open() is deliberate: recovery is idempotent, and a
  // supervisor resuming after a replica crash wants any interrupted
  // promotion rolled forward before the replacement process loads
  // CURRENT.
  LoadStatus St = Store.open();
  if (!St)
    return St;
  if (Store.currentEpoch() == 0)
    return LoadStatus::failure(
        "store '" + Store.dir() +
        "' has no promoted epoch to resume from (was it ever started?)");
  return syncReplicasLocked();
}

LoadStatus RolloutController::rollout(serialize::TrainedModel Candidate,
                                      CycleReport &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  CycleReport Report;
  LoadStatus St = serialize::validateAgainst(Candidate, Program);
  if (!St)
    return St;
  if (Fleet.empty() || !Fleet[0]->serving())
    return LoadStatus::failure("fleet is not serving (call start() first)");

  // --- Publish: durable image + manifest record. ---
  support::WallTimer PublishTimer;
  uint64_t Epoch =
      Store.records().empty() ? 1 : Store.records().back().Epoch + 1;
  Candidate.Meta.Epoch = Epoch;
  uint64_t Landed = 0;
  St = Store.publish(serialize::serializeModel(Candidate), Landed);
  if (!St)
    return St;
  Report.CandidateEpoch = Landed;
  Report.PublishSeconds = PublishTimer.elapsedSeconds();

  // --- Canary: durable transition first, then replica 0 serves it. ---
  support::WallTimer CanaryTimer;
  St = Store.setState(Landed, store::EpochState::Canary);
  if (!St)
    return St;
  Replica &Canary = *Fleet[0];
  Report.ChampionScore = shadowScoreLocked(Canary.service());
  St = Canary.adopt(Landed);
  if (!St) {
    // The candidate image failed verification or parse at the canary:
    // roll it back durably; the fleet never saw it.
    Store.rollback(Landed);
    return St;
  }
  Report.CandidateScore = shadowScoreLocked(Canary.service());
  bool Promote =
      Report.CandidateScore <=
      Report.ChampionScore * (1.0 + Opts.CanaryMargin);
  Report.CanarySeconds = CanaryTimer.elapsedSeconds();

  // --- Promote fleet-wide, or roll the canary back. ---
  support::WallTimer PromoteTimer;
  if (Promote) {
    St = Store.promote(Landed);
    if (!St)
      return St;
    St = syncReplicasLocked();
    if (!St)
      return St;
    Report.Promoted = true;
  } else {
    St = Store.rollback(Landed);
    if (!St)
      return St;
    // The canary reverts to the fleet champion (CURRENT is unchanged).
    St = Canary.sync();
    if (!St)
      return St;
  }
  Report.PromoteSeconds = PromoteTimer.elapsedSeconds();

  St = Store.gc(Opts.KeepFinished);
  if (!St)
    return St;
  Out = Report;
  return LoadStatus::success();
}

//===----------------------------------------------------------------------===//
// Publisher
//===----------------------------------------------------------------------===//

Publisher::Outcome
Publisher::retrainAndRollout(const std::vector<size_t> &SampleInputs,
                             RolloutController::CycleReport &Report,
                             std::string &Why) {
  if (stopRequested()) {
    Why = "stop requested before retraining";
    return Outcome::Stopped;
  }
  if (SampleInputs.size() < 4) {
    Why = "sample too thin to retrain on (" +
          std::to_string(SampleInputs.size()) + " inputs)";
    return Outcome::NoCandidate;
  }
  if (Opts.OnRetrainStart)
    Opts.OnRetrainStart();

  // Provenance comes from the serving champion: the candidate is the
  // same benchmark at the same scale, retrained on recent traffic.
  const serialize::ModelMeta &Meta =
      Controller.replica(0).service().model().Meta;

  serialize::TrainedModel Candidate;
  try {
    runtime::SubsetProgram View(Program, SampleInputs);
    core::PipelineOptions Opt = Opts.Retrain;
    runtime::AdaptiveService::clampRetrainOptions(Opt, SampleInputs.size());
    core::TrainedSystem Sys = core::trainSystem(View, Opt);
    Candidate = serialize::makeModel(Meta.Benchmark, Meta.Scale,
                                     Meta.ProgramSeed, View, std::move(Sys));
    Candidate.System.Data.reset();
  } catch (const std::exception &E) {
    Why = std::string("candidate retrain failed: ") + E.what();
    return Outcome::NoCandidate;
  }

  // The stop window that matters: SIGTERM landed while the retrain was
  // running. The candidate is complete in memory but nothing durable
  // exists -- discard it here and nothing ever will.
  if (stopRequested()) {
    Why = "stop requested during retrain; candidate discarded unpublished";
    return Outcome::Stopped;
  }

  serialize::LoadStatus St = Controller.rollout(std::move(Candidate), Report);
  if (!St) {
    Why = St.Error;
    return Outcome::NoCandidate;
  }
  return Report.Promoted ? Outcome::Promoted : Outcome::RolledBack;
}

} // namespace rollout
} // namespace pbt

//===- rollout/RolloutController.h - Staged epoch rollout machine ----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged rollout state machine over the crash-safe model store: one
/// publisher produces candidate epochs, N serving replicas consume them,
/// and a candidate reaches the fleet only through
///
///   Publish -> Canary -> Promote   (or -> Rollback)
///
/// with every transition durable in the store's MANIFEST before any
/// replica acts on it. Canarying is real: replica 0 actually serves the
/// candidate while its live shadow score (mean run cost over a seeded
/// sample of inputs) is compared against the champion's on the same
/// sample; only a candidate that holds up is promoted fleet-wide, and a
/// rollback reverts the canary to the champion it never stopped
/// trusting.
///
/// The fleet is simulated in-process -- each Replica is a
/// runtime::PredictionService plus the store-reader loop a real serving
/// process would run -- so the whole state machine is testable under the
/// randomized fault-injection wall (and TSan: replicas may sync on their
/// own threads; the store's atomic-rename protocol is the only shared
/// state). A killed-and-restarted fleet resumes from the MANIFEST:
/// ModelStore::open() rolls interrupted promotions forward and demotes
/// mid-flight candidates, and resume() converges every replica onto the
/// surviving CURRENT epoch.
///
/// The Publisher at the bottom is the AdaptiveService-style retrainer
/// driving the machine: retrain on a traffic sample, then rollout. It
/// honors a stop flag (SIGTERM handlers set it) at phase boundaries, so
/// shutdown mid-shadow-retrain discards the candidate instead of
/// publishing a partial epoch.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ROLLOUT_ROLLOUTCONTROLLER_H
#define PBT_ROLLOUT_ROLLOUTCONTROLLER_H

#include "core/Pipeline.h"
#include "runtime/PredictionService.h"
#include "store/ModelStore.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pbt {
namespace rollout {

/// One simulated serving replica: a PredictionService plus the
/// poll-CURRENT / load-verified / hot-swap loop a real replica runs.
/// Thread contract: one thread drives a given Replica at a time;
/// different Replicas are fully independent (the store directory is the
/// only shared state, and it is reader-safe by atomic rename).
class Replica {
public:
  Replica(const runtime::TunableProgram &Program, std::string StoreDir)
      : Program(Program), StoreDir(std::move(StoreDir)) {}

  /// Polls CURRENT; when it names a different epoch than the one served,
  /// loads it checksum-verified (with fallback) and hot-swaps. A
  /// rejected image is counted in tornReadsPrevented() and never serves.
  /// Returns failure only when no good epoch is loadable at all (the
  /// replica then keeps serving what it has).
  serialize::LoadStatus sync();

  /// Swaps to a specific epoch image (the canary path; bypasses
  /// CURRENT). Verified exactly like sync().
  serialize::LoadStatus adopt(uint64_t Epoch);

  /// Epoch currently serving (0 = none yet).
  uint64_t epoch() const { return Epoch; }
  bool serving() const { return Service && Service->ready(); }
  runtime::PredictionService &service() { return *Service; }

  /// Store images rejected by size/checksum verification before a good
  /// epoch loaded -- every one is a torn read that never reached a
  /// decision. The fault wall asserts serving correctness *despite*
  /// this being nonzero.
  uint64_t tornReadsPrevented() const { return TornPrevented; }
  uint64_t syncCount() const { return Syncs; }
  uint64_t swapCount() const { return Swaps; }

private:
  serialize::LoadStatus adoptText(uint64_t Epoch, const std::string &Text);

  const runtime::TunableProgram &Program;
  std::string StoreDir;
  std::unique_ptr<runtime::PredictionService> Service;
  uint64_t Epoch = 0;
  uint64_t TornPrevented = 0;
  uint64_t Syncs = 0;
  uint64_t Swaps = 0;
};

struct RolloutOptions {
  /// Serving replicas in the simulated fleet (replica 0 is the canary).
  size_t Replicas = 3;
  /// Inputs in the canary shadow sample (clamped to the program).
  size_t ShadowSample = 24;
  uint64_t ShadowSeed = 0xCA9A23;
  /// Promote when candidate cost <= champion cost * (1 + Margin): the
  /// canary is a regression gate, not an optimizer -- the publisher
  /// already decided the candidate is worth shipping, so equality
  /// passes and only a measurably worse candidate rolls back.
  double CanaryMargin = 0.0;
  /// Finished (Retired/RolledBack) epochs kept for fallback before GC.
  size_t KeepFinished = 4;
};

/// The publisher-side state machine driver. Owns the single-writer
/// ModelStore handle and the in-process fleet.
class RolloutController {
public:
  /// \p Program must outlive the controller; it is the shared traffic
  /// universe every replica binds (provenance-checked per model).
  RolloutController(const runtime::TunableProgram &Program,
                    std::string StoreDir, RolloutOptions Options = {});

  /// Opens the store (running crash recovery), seeds it with \p Initial
  /// when empty (publish + immediate promote -- the bootstrap epoch
  /// skips canarying; there is nothing to compare against), and syncs
  /// every replica onto CURRENT.
  serialize::LoadStatus start(const serialize::TrainedModel &Initial);

  /// The restart path: like start() but never seeds -- a store left
  /// behind by a killed fleet must already contain the durable truth.
  /// Safe to drive from a fleet::Supervisor's monitor thread while the
  /// publisher is mid-rollout on another: every public transition locks
  /// one internal mutex, so a supervisor-triggered resume (re-running
  /// store recovery and re-syncing the canary before a crashed replica
  /// respawns) serializes cleanly against publish/canary/promote.
  serialize::LoadStatus resume();

  /// One full staged rollout of \p Candidate.
  struct CycleReport {
    uint64_t CandidateEpoch = 0;
    bool Promoted = false;
    double ChampionScore = 0.0;
    double CandidateScore = 0.0;
    double PublishSeconds = 0.0;
    double CanarySeconds = 0.0; ///< canary swap + shadow scoring + verdict
    double PromoteSeconds = 0.0; ///< promote/rollback through replica sync
  };

  /// Publish -> Canary (replica 0 serves it, shadow-scored against the
  /// champion) -> Promote fleet-wide or Rollback. Every transition is
  /// durable before the fleet moves. The candidate's Meta.Epoch is
  /// rewritten to the store epoch it lands as, so the image is
  /// self-describing. Throws support::FaultCrash through from the store
  /// when a crash failpoint triggers mid-protocol.
  serialize::LoadStatus rollout(serialize::TrainedModel Candidate,
                                CycleReport &Out);

  /// Re-syncs every replica onto the store's CURRENT epoch.
  serialize::LoadStatus syncReplicas();

  size_t replicaCount() const { return Fleet.size(); }
  Replica &replica(size_t I) { return *Fleet[I]; }
  store::ModelStore &modelStore() { return Store; }
  uint64_t currentEpoch() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Store.currentEpoch();
  }

  /// Mean run cost of serving the shadow sample with \p Service's
  /// decisions -- the canary comparison metric. Exposed for tests.
  double shadowScore(runtime::PredictionService &Service);

private:
  serialize::LoadStatus syncReplicasLocked();
  double shadowScoreLocked(runtime::PredictionService &Service);

  const runtime::TunableProgram &Program;
  store::ModelStore Store;
  RolloutOptions Opts;
  std::vector<std::unique_ptr<Replica>> Fleet;
  std::vector<size_t> Sample; // seeded shadow-sample inputs
  /// Serializes start/resume/rollout/syncReplicas across threads: the
  /// publisher and a supervising monitor may both drive transitions.
  mutable std::mutex Mu;
};

//===----------------------------------------------------------------------===//
// Publisher: the retrain side of the trainer/server split
//===----------------------------------------------------------------------===//

struct PublisherOptions {
  /// Pipeline template for candidate retraining; clamped to the sample
  /// exactly like AdaptiveService's shadow retrain.
  core::PipelineOptions Retrain;
  /// Graceful-shutdown flag (a SIGTERM handler stores true). Checked at
  /// phase boundaries: before retraining, and again between retrain and
  /// publish -- a stop mid-retrain discards the candidate; a partial
  /// epoch is never published.
  std::atomic<bool> *Stop = nullptr;
  /// Test hook, called after the stop check when retraining begins (the
  /// graceful-shutdown test delivers its signal here).
  std::function<void()> OnRetrainStart;
};

class Publisher {
public:
  enum class Outcome {
    Stopped,    ///< stop flag honored; nothing published
    NoCandidate,///< retrain failed or sample too thin; nothing published
    Promoted,
    RolledBack,
  };

  Publisher(RolloutController &Controller,
            const runtime::TunableProgram &Program, PublisherOptions Options)
      : Controller(Controller), Program(Program), Opts(std::move(Options)) {}

  /// Retrains a candidate on \p SampleInputs (SubsetProgram over the
  /// shared universe) and drives one staged rollout with it. \p Why
  /// explains NoCandidate outcomes.
  Outcome retrainAndRollout(const std::vector<size_t> &SampleInputs,
                            RolloutController::CycleReport &Report,
                            std::string &Why);

private:
  bool stopRequested() const {
    return Opts.Stop && Opts.Stop->load(std::memory_order_relaxed);
  }

  RolloutController &Controller;
  const runtime::TunableProgram &Program;
  PublisherOptions Opts;
};

} // namespace rollout
} // namespace pbt

#endif // PBT_ROLLOUT_ROLLOUTCONTROLLER_H

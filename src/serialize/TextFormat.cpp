//===- serialize/TextFormat.cpp ---------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "serialize/TextFormat.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace pbt;
using namespace pbt::serialize;

std::string serialize::formatDouble(double V) {
  // 17 significant digits round-trip every finite double exactly; %g keeps
  // small integers (counts, labels stored as doubles) short and readable.
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

Writer &Writer::key(const std::string &K) {
  assert(!InLine && "previous line not ended");
  assert(!K.empty() && K.find_first_of(" \n") == std::string::npos &&
         "keys are single tokens");
  Out += K;
  InLine = true;
  return *this;
}

Writer &Writer::u64(uint64_t V) {
  assert(InLine && "token outside a line");
  Out += ' ';
  Out += std::to_string(V);
  return *this;
}

Writer &Writer::f(double V) {
  assert(InLine && "token outside a line");
  Out += ' ';
  Out += formatDouble(V);
  return *this;
}

Writer &Writer::word(const std::string &W) {
  assert(InLine && "token outside a line");
  assert(!W.empty() && W.find_first_of(" \n") == std::string::npos &&
         "words are single tokens");
  Out += ' ';
  Out += W;
  return *this;
}

Writer &Writer::text(const std::string &T) {
  assert(InLine && "token outside a line");
  assert(T.find('\n') == std::string::npos && "text cannot span lines");
  // Reader::rest() trims leading separators and rejects an empty
  // remainder, so only edge-space-free, non-empty text round-trips.
  assert(!T.empty() && T.front() != ' ' && T.back() != ' ' &&
         "text must be non-empty without edge spaces");
  Out += ' ';
  Out += T;
  return *this;
}

Writer &Writer::end() {
  assert(InLine && "no line to end");
  Out += '\n';
  InLine = false;
  return *this;
}

void Writer::doubles(const std::string &K, const std::vector<double> &V) {
  key(K).u64(V.size());
  for (double X : V)
    f(X);
  end();
}

void Writer::u64s(const std::string &K, const std::vector<uint64_t> &V) {
  key(K).u64(V.size());
  for (uint64_t X : V)
    u64(X);
  end();
}

void Writer::matrix(const std::string &Name, const linalg::Matrix &M) {
  key("matrix").word(Name).u64(M.rows()).u64(M.cols()).end();
  for (size_t R = 0; R != M.rows(); ++R) {
    key("row");
    for (size_t C = 0; C != M.cols(); ++C)
      f(M.at(R, C));
    end();
  }
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

Reader::Reader(std::string TextIn) : Text(std::move(TextIn)) {
  // Position "before" the first line: nextKey()/expect() advance first.
  Pos = LineEnd = 0;
}

bool Reader::fail(const std::string &Msg) {
  if (Error.empty())
    Error = "line " + std::to_string(Line) + ": " + Msg;
  return false;
}

bool Reader::atEnd() const { return LineEnd >= Text.size(); }

/// Reads the next space-separated token of the current line into \p Tok.
bool Reader::nextToken(std::string &Tok) {
  Tok.clear();
  if (!ok())
    return false;
  while (Pos < LineEnd && Text[Pos] == ' ')
    ++Pos;
  if (Pos >= LineEnd)
    return false;
  size_t Start = Pos;
  while (Pos < LineEnd && Text[Pos] != ' ')
    ++Pos;
  Tok.assign(Text, Start, Pos - Start);
  return true;
}

std::string Reader::nextKey() {
  if (!ok())
    return "";
  // Skip the unread remainder of the current line.
  size_t Next = LineEnd;
  if (Next >= Text.size())
    return "";
  // After the first line, LineEnd sits on the previous newline. At
  // start-of-input (Line == 0) position 0 is content: a file opening
  // with a blank line must be rejected, not silently skipped.
  if (Line > 0 && Text[Next] == '\n')
    ++Next;
  if (Next >= Text.size())
    return "";
  Pos = Next;
  size_t NL = Text.find('\n', Next);
  LineEnd = NL == std::string::npos ? Text.size() : NL;
  ++Line;
  std::string Key;
  if (!nextToken(Key)) {
    fail("empty line");
    return "";
  }
  return Key;
}

bool Reader::expect(const std::string &Key) {
  if (!ok())
    return false;
  if (atEnd())
    return fail("unexpected end of input, expected '" + Key + "'");
  std::string Got = nextKey();
  if (!ok())
    return false;
  if (Got != Key)
    return fail("expected '" + Key + "', got '" + Got + "'");
  return true;
}

uint64_t Reader::u64() {
  std::string Tok;
  if (!nextToken(Tok)) {
    fail("expected unsigned integer");
    return 0;
  }
  if (Tok[0] == '-' || Tok[0] == '+') {
    fail("expected unsigned integer, got '" + Tok + "'");
    return 0;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Tok.c_str(), &End, 10);
  if (errno != 0 || End != Tok.c_str() + Tok.size()) {
    fail("bad unsigned integer '" + Tok + "'");
    return 0;
  }
  return V;
}

uint64_t Reader::count(uint64_t Max) {
  uint64_t V = u64();
  if (ok() && V > Max) {
    fail("count " + std::to_string(V) + " exceeds limit " +
         std::to_string(Max));
    return 0;
  }
  return ok() ? V : 0;
}

double Reader::f() {
  std::string Tok;
  if (!nextToken(Tok)) {
    fail("expected number");
    return 0.0;
  }
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Tok.c_str(), &End);
  if (End != Tok.c_str() + Tok.size()) {
    fail("bad number '" + Tok + "'");
    return 0.0;
  }
  return V;
}

std::string Reader::word() {
  std::string Tok;
  if (!nextToken(Tok))
    fail("expected word");
  return Tok;
}

std::string Reader::rest() {
  if (!ok())
    return "";
  size_t Start = Pos;
  while (Start < LineEnd && Text[Start] == ' ')
    ++Start;
  if (Start >= LineEnd) {
    fail("expected text");
    return "";
  }
  Pos = LineEnd;
  return Text.substr(Start, LineEnd - Start);
}

bool Reader::endLine() {
  if (!ok())
    return false;
  size_t P = Pos;
  while (P < LineEnd && Text[P] == ' ')
    ++P;
  if (P != LineEnd)
    return fail("trailing tokens on line");
  return true;
}

bool Reader::doubles(const std::string &Key, std::vector<double> &Out,
                     uint64_t MaxCount) {
  Out.clear();
  if (!expect(Key))
    return false;
  uint64_t N = count(MaxCount);
  for (uint64_t I = 0; I != N && ok(); ++I)
    Out.push_back(f());
  return endLine();
}

bool Reader::u64s(const std::string &Key, std::vector<uint64_t> &Out,
                  uint64_t MaxCount) {
  Out.clear();
  if (!expect(Key))
    return false;
  uint64_t N = count(MaxCount);
  for (uint64_t I = 0; I != N && ok(); ++I)
    Out.push_back(u64());
  return endLine();
}

bool Reader::matrix(const std::string &Name, linalg::Matrix &Out,
                    uint64_t MaxRows, uint64_t MaxCols) {
  if (!expect("matrix"))
    return false;
  std::string Got = word();
  if (ok() && Got != Name)
    return fail("expected matrix '" + Name + "', got '" + Got + "'");
  uint64_t Rows = count(MaxRows);
  uint64_t Cols = count(MaxCols);
  if (!endLine())
    return false;
  // Fill row by row so a corrupt header cannot allocate more than the
  // input actually carries.
  std::vector<double> Data;
  for (uint64_t R = 0; R != Rows && ok(); ++R) {
    if (!expect("row"))
      return false;
    for (uint64_t C = 0; C != Cols && ok(); ++C)
      Data.push_back(f());
    if (!endLine())
      return false;
  }
  if (!ok())
    return false;
  Out = linalg::Matrix::fromData(Rows, Cols, std::move(Data));
  return true;
}

//===- serialize/ModelIO.h - Trained-system persistence ---------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trips a fully trained two-level system through the versioned text
/// format of serialize/TextFormat.h, decoupling expensive offline training
/// from cheap online selection: `pbt-bench train` persists a TrainedModel,
/// a fresh process loads it into a runtime::PredictionService, and the
/// golden-file regression suite pins the serialized bytes.
///
/// A TrainedModel is a core::TrainedSystem (evidence tables, normalizer,
/// clusters, landmark Configurations, cost matrix, the production
/// classifier and the one-level baseline) plus the metadata needed to
/// reconstruct the program it was trained for (benchmark registry key,
/// scale, input-generation seed, feature declarations).
///
/// Loading is defensive: every index is bounds-checked against the
/// declared shapes, so truncated, corrupted, or adversarial files produce
/// an error message -- never a crash or a silently mis-loaded model.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SERIALIZE_MODELIO_H
#define PBT_SERIALIZE_MODELIO_H

#include "core/Pipeline.h"
#include "runtime/ConfigSpace.h"
#include "runtime/Selector.h"
#include "serialize/TextFormat.h"

#include <memory>
#include <string>
#include <vector>

namespace pbt {
namespace runtime {
class CompiledModel;
} // namespace runtime
namespace serialize {

/// Current format version; bump when the schema changes shape. Loaders
/// reject any other version outright (no silent best-effort parsing).
/// v2: adds the model-epoch tag (the adaptive serving loop's hot-swap
/// generation counter; 0 for offline-trained models).
/// v3: records the program's configuration space -- parameter kinds,
/// bounds, and the conditional (parent/activation-mask) structure -- so
/// landmarks are validated at load time against the exact space they were
/// tuned in, dead-branch values are checked canonical, and a serving
/// process can reject a model whose space drifted from the program's.
inline constexpr unsigned kFormatVersion = 3;

/// Schema caps shared by the writer and the loader, so everything the
/// writer accepts loads back. The loader uses them to reject corrupt
/// counts before allocating; serializeModel asserts them at save time.
/// All sit far above what `--scale`'s [0.1, 100] clamp can produce.
inline constexpr uint64_t kMaxProperties = 1u << 10;
inline constexpr uint64_t kMaxFeatureLevels = 64;
inline constexpr uint64_t kMaxLandmarks = 1u << 16;
inline constexpr uint64_t kMaxRows = 1u << 22;
/// Matches ConfigSpace::activeMask's 64-parameter bitmask cap.
inline constexpr uint64_t kMaxSpaceParams = 64;

/// Provenance needed to rebuild the program a system was trained on.
struct ModelMeta {
  /// Benchmark registry key, e.g. "sort1".
  std::string Benchmark;
  /// Input-count scale the training program was built at.
  double Scale = 1.0;
  /// Input-generation seed of the training program.
  uint64_t ProgramSeed = 0;
  /// Model generation in an adaptive serving loop: 0 for offline-trained
  /// models, incremented by every runtime::AdaptiveService hot-swap so a
  /// persisted snapshot records which adaptation round produced it.
  uint64_t Epoch = 0;
  /// The program's input_feature declarations (names + sampling levels).
  std::vector<runtime::FeatureInfo> Features;
  /// The program's configuration space, including conditional-parameter
  /// structure. Landmarks are validated against it on load, and a serving
  /// process compares it against the live program's space (validateAgainst)
  /// before trusting the model's configurations.
  runtime::ConfigSpace Space;

  /// Total flat ML feature count (sum of per-property levels).
  unsigned numFlatFeatures() const;
};

/// A trained system plus its provenance: the unit of persistence.
struct TrainedModel {
  ModelMeta Meta;
  core::TrainedSystem System;
};

/// Outcome of a load; on failure Error names the offending line.
struct LoadStatus {
  bool Ok = true;
  std::string Error;

  static LoadStatus success() { return {}; }
  static LoadStatus failure(std::string Msg) { return {false, std::move(Msg)}; }
  explicit operator bool() const { return Ok; }
};

//===----------------------------------------------------------------------===//
// Component round trips (used standalone by tests and composed below)
//===----------------------------------------------------------------------===//

void saveConfiguration(Writer &W, const runtime::Configuration &Config);
bool loadConfiguration(Reader &R, runtime::Configuration &Out);

void saveSelector(Writer &W, const runtime::Selector &Selector);
bool loadSelector(Reader &R, runtime::Selector &Out);

/// Polymorphic production-classifier round trip. \p NumClasses is the
/// landmark count predictions must stay below; \p NumFlat the flat ML
/// feature count extractions must stay below.
void saveClassifier(Writer &W, const core::InputClassifier &Classifier);
std::unique_ptr<core::InputClassifier>
loadClassifier(Reader &R, unsigned NumClasses, unsigned NumFlat);

//===----------------------------------------------------------------------===//
// Whole-model round trip
//===----------------------------------------------------------------------===//

/// Captures provenance from \p Program and adopts \p System.
TrainedModel makeModel(const std::string &Benchmark, double Scale,
                       uint64_t ProgramSeed,
                       const runtime::TunableProgram &Program,
                       core::TrainedSystem System);

/// Serializes \p Model to the versioned text format. Deterministic: equal
/// models produce identical bytes, and serialize(load(text)) == text.
std::string serializeModel(const TrainedModel &Model);

/// Parses serializeModel output. On failure \p Out is untouched.
LoadStatus loadModel(const std::string &Text, TrainedModel &Out);

/// File convenience wrappers. writeModelText exists so callers that
/// already hold serializeModel output need not serialize twice.
LoadStatus writeModelText(const std::string &Path, const std::string &Text);
LoadStatus saveModelFile(const std::string &Path, const TrainedModel &Model);
LoadStatus loadModelFile(const std::string &Path, TrainedModel &Out);

/// Loads a model file and, on success, lowers it straight into its
/// compiled serving form (runtime/CompiledModel.h) -- the one-step path
/// PredictionService and `pbt-bench serve` use so a freshly loaded model
/// is immediately servable at arena speed. On failure both outputs are
/// untouched.
LoadStatus loadCompiledModelFile(const std::string &Path, TrainedModel &Out,
                                 runtime::CompiledModel &Compiled);

/// Checks that \p Model matches \p Program (feature declarations,
/// configuration arity, input count covering the recorded rows) -- the
/// gate a PredictionService runs before serving decisions.
LoadStatus validateAgainst(const TrainedModel &Model,
                           const runtime::TunableProgram &Program);

} // namespace serialize
} // namespace pbt

#endif // PBT_SERIALIZE_MODELIO_H

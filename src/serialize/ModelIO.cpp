//===- serialize/ModelIO.cpp ------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "serialize/ModelIO.h"

#include "core/Classifiers.h"
#include "runtime/CompiledModel.h"

#include <cmath>
#include <fstream>
#include <sstream>

using namespace pbt;
using namespace pbt::serialize;

unsigned ModelMeta::numFlatFeatures() const {
  unsigned Total = 0;
  for (const runtime::FeatureInfo &F : Features)
    Total += F.Levels;
  return Total;
}

//===----------------------------------------------------------------------===//
// Component round trips
//===----------------------------------------------------------------------===//

void serialize::saveConfiguration(Writer &W,
                                  const runtime::Configuration &Config) {
  W.doubles("config", Config.values());
}

bool serialize::loadConfiguration(Reader &R, runtime::Configuration &Out) {
  std::vector<double> Values;
  if (!R.doubles("config", Values, 1u << 20))
    return false;
  Out = runtime::Configuration(std::move(Values));
  return true;
}

void serialize::saveSelector(Writer &W, const runtime::Selector &Selector) {
  W.key("selector").u64(Selector.levels().size()).end();
  for (const runtime::Selector::Level &L : Selector.levels())
    W.key("level").u64(L.Cutoff).u64(L.Choice).end();
}

bool serialize::loadSelector(Reader &R, runtime::Selector &Out) {
  if (!R.expect("selector"))
    return false;
  uint64_t N = R.count(1u << 20);
  if (!R.endLine())
    return false;
  std::vector<runtime::Selector::Level> Levels;
  for (uint64_t I = 0; I != N && R.ok(); ++I) {
    if (!R.expect("level"))
      return false;
    runtime::Selector::Level L;
    L.Cutoff = R.u64();
    uint64_t Choice = R.u64();
    if (!R.endLine())
      return false;
    if (Choice > 0xFFFFFFFFull)
      return R.fail("selector choice out of range");
    L.Choice = static_cast<unsigned>(Choice);
    Levels.push_back(L);
  }
  if (!R.ok())
    return false;
  Out = runtime::Selector(std::move(Levels));
  return true;
}

//===----------------------------------------------------------------------===//
// Polymorphic classifier round trip
//===----------------------------------------------------------------------===//

void serialize::saveClassifier(Writer &W,
                               const core::InputClassifier &Classifier) {
  if (auto *C = dynamic_cast<const core::ConstantClassifier *>(&Classifier)) {
    W.key("classifier").word("constant").end();
    W.key("landmark").u64(C->landmark()).end();
    return;
  }
  if (auto *C =
          dynamic_cast<const core::MaxAprioriClassifier *>(&Classifier)) {
    W.key("classifier").word("max-apriori").end();
    C->model().saveTo(W);
    return;
  }
  if (auto *C =
          dynamic_cast<const core::SubsetTreeClassifier *>(&Classifier)) {
    W.key("classifier").word("tree").end();
    W.key("name").text(C->describe()).end();
    std::vector<uint64_t> Subset(C->subset().begin(), C->subset().end());
    W.u64s("subset", Subset);
    C->tree().saveTo(W);
    return;
  }
  if (auto *C =
          dynamic_cast<const core::IncrementalClassifier *>(&Classifier)) {
    W.key("classifier").word("incremental").end();
    W.key("name").text(C->describe()).end();
    C->model().saveTo(W);
    return;
  }
  if (auto *C = dynamic_cast<const core::OneLevelClassifier *>(&Classifier)) {
    W.key("classifier").word("one-level").end();
    W.matrix("centroids", C->centroids());
    C->norm().saveTo(W);
    std::vector<uint64_t> CL(C->clusterLandmark().begin(),
                             C->clusterLandmark().end());
    W.u64s("cluster-landmark", CL);
    return;
  }
  assert(false && "unknown classifier kind cannot be persisted");
}

std::unique_ptr<core::InputClassifier>
serialize::loadClassifier(Reader &R, unsigned NumClasses, unsigned NumFlat) {
  if (!R.expect("classifier"))
    return nullptr;
  std::string Kind = R.word();
  if (!R.endLine())
    return nullptr;

  if (Kind == "constant") {
    if (!R.expect("landmark"))
      return nullptr;
    uint64_t L = R.u64();
    if (!R.endLine())
      return nullptr;
    if (L >= NumClasses) {
      R.fail("constant classifier landmark out of range");
      return nullptr;
    }
    return std::make_unique<core::ConstantClassifier>(
        static_cast<unsigned>(L));
  }

  if (Kind == "max-apriori") {
    ml::MaxApriori Model;
    if (!Model.loadFrom(R))
      return nullptr;
    if (Model.priors().size() != NumClasses) {
      R.fail("max-apriori prior count does not match landmark count");
      return nullptr;
    }
    return std::make_unique<core::MaxAprioriClassifier>(std::move(Model));
  }

  if (Kind == "tree") {
    if (!R.expect("name"))
      return nullptr;
    std::string Name = R.rest();
    std::vector<uint64_t> Subset;
    if (!R.u64s("subset", Subset, NumFlat))
      return nullptr;
    for (uint64_t F : Subset)
      if (F >= NumFlat) {
        R.fail("subset feature out of range");
        return nullptr;
      }
    ml::DecisionTree Tree;
    if (!Tree.loadFrom(R, NumClasses))
      return nullptr;
    for (unsigned F : Tree.usedFeatures())
      if (F >= NumFlat) {
        R.fail("tree feature out of range");
        return nullptr;
      }
    return std::make_unique<core::SubsetTreeClassifier>(
        std::move(Tree), std::vector<unsigned>(Subset.begin(), Subset.end()),
        std::move(Name));
  }

  if (Kind == "incremental") {
    if (!R.expect("name"))
      return nullptr;
    std::string Name = R.rest();
    ml::IncrementalBayes Model;
    if (!Model.loadFrom(R, NumFlat))
      return nullptr;
    if (Model.numClasses() != NumClasses) {
      R.fail("incremental classifier class count mismatch");
      return nullptr;
    }
    return std::make_unique<core::IncrementalClassifier>(std::move(Model),
                                                         std::move(Name));
  }

  if (Kind == "one-level") {
    linalg::Matrix Centroids;
    if (!R.matrix("centroids", Centroids))
      return nullptr;
    if (Centroids.rows() == 0 || Centroids.cols() != NumFlat) {
      R.fail("one-level centroid shape mismatch");
      return nullptr;
    }
    ml::Normalizer Norm;
    if (!Norm.loadFrom(R))
      return nullptr;
    if (Norm.numFeatures() != NumFlat) {
      R.fail("one-level normalizer width mismatch");
      return nullptr;
    }
    std::vector<uint64_t> CL;
    if (!R.u64s("cluster-landmark", CL, 1u << 20))
      return nullptr;
    if (CL.size() != Centroids.rows()) {
      R.fail("one cluster-landmark entry per centroid required");
      return nullptr;
    }
    for (uint64_t L : CL)
      if (L >= NumClasses) {
        R.fail("cluster landmark out of range");
        return nullptr;
      }
    return std::make_unique<core::OneLevelClassifier>(
        std::move(Centroids), std::move(Norm),
        std::vector<unsigned>(CL.begin(), CL.end()));
  }

  R.fail("unknown classifier kind '" + Kind + "'");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Whole-model round trip
//===----------------------------------------------------------------------===//

TrainedModel serialize::makeModel(const std::string &Benchmark, double Scale,
                                  uint64_t ProgramSeed,
                                  const runtime::TunableProgram &Program,
                                  core::TrainedSystem System) {
  TrainedModel M;
  M.Meta.Benchmark = Benchmark;
  M.Meta.Scale = Scale;
  M.Meta.ProgramSeed = ProgramSeed;
  M.Meta.Features = Program.features();
  M.Meta.Space = Program.space();
  M.System = std::move(System);
  return M;
}

/// The `param` line token for a ParamKind (and back).
static const char *kindWord(runtime::ParamKind K) {
  switch (K) {
  case runtime::ParamKind::Categorical:
    return "categorical";
  case runtime::ParamKind::Integer:
    return "integer";
  case runtime::ParamKind::Real:
    return "real";
  }
  assert(false && "unknown parameter kind");
  return "real";
}

static void saveConfigSpace(Writer &W, const runtime::ConfigSpace &Space) {
  assert(Space.size() <= kMaxSpaceParams &&
         "too many parameters to serialize");
  W.key("config-space").u64(Space.size()).end();
  for (unsigned I = 0; I != Space.size(); ++I) {
    const runtime::ParamSpec &P = Space.param(I);
    // Parent is written +1 so the unconditional sentinel (-1) stays a
    // plain unsigned token: 0 = no parent.
    W.key("param")
        .word(kindWord(P.Kind))
        .f(P.Min)
        .f(P.Max)
        .u64(P.Cardinality)
        .u64(P.LogScale ? 1 : 0)
        .u64(static_cast<uint64_t>(P.Parent + 1))
        .u64(P.ParentMask)
        .text(P.Name)
        .end();
  }
}

/// Parses saveConfigSpace output, rebuilding the space through its
/// declaration API so every ConfigSpace invariant (bounds ordering,
/// positive log-scale ranges, parents preceding children, categorical
/// parents) is re-established -- a corrupt file fails here, never inside
/// an assert.
static bool loadConfigSpace(Reader &R, runtime::ConfigSpace &Out) {
  if (!R.expect("config-space"))
    return false;
  uint64_t N = R.count(kMaxSpaceParams);
  if (!R.endLine())
    return false;
  runtime::ConfigSpace Space;
  for (uint64_t I = 0; I != N && R.ok(); ++I) {
    if (!R.expect("param"))
      return false;
    std::string Kind = R.word();
    double Min = R.f();
    double Max = R.f();
    uint64_t Cardinality = R.u64();
    uint64_t LogScale = R.u64();
    uint64_t ParentP1 = R.u64();
    uint64_t ParentMask = R.u64();
    std::string Name = R.rest();
    if (!R.ok())
      return false;
    if (Name.empty())
      return R.fail("parameter needs a name");
    if (LogScale > 1)
      return R.fail("parameter log-scale flag must be 0 or 1");
    if (Kind == "categorical") {
      if (Cardinality < 1 || Cardinality > (uint64_t(1) << 20))
        return R.fail("categorical cardinality out of range");
      if (LogScale != 0)
        return R.fail("categorical parameters cannot be log-scaled");
      if (Min != 0.0 || Max != static_cast<double>(Cardinality - 1))
        return R.fail("categorical bounds must be [0, cardinality-1]");
      Space.addCategorical(std::move(Name),
                           static_cast<unsigned>(Cardinality));
    } else if (Kind == "integer") {
      if (Cardinality != 0)
        return R.fail("only categorical parameters carry a cardinality");
      if (!(Min <= Max) || Min != std::floor(Min) || Max != std::floor(Max) ||
          std::abs(Min) > 0x1p62 || std::abs(Max) > 0x1p62)
        return R.fail("bad integer parameter bounds");
      if (LogScale && Min <= 0)
        return R.fail("log-scaled range must be positive");
      Space.addInteger(std::move(Name), static_cast<int64_t>(Min),
                       static_cast<int64_t>(Max), LogScale == 1);
    } else if (Kind == "real") {
      if (Cardinality != 0)
        return R.fail("only categorical parameters carry a cardinality");
      if (!(Min <= Max))
        return R.fail("bad real parameter bounds");
      if (LogScale && Min <= 0.0)
        return R.fail("log-scaled range must be positive");
      Space.addReal(std::move(Name), Min, Max, LogScale == 1);
    } else {
      return R.fail("unknown parameter kind '" + Kind + "'");
    }
    if (ParentP1 == 0) {
      if (ParentMask != 0)
        return R.fail("unconditional parameter cannot carry a parent mask");
    } else {
      uint64_t Parent = ParentP1 - 1;
      if (Parent >= I)
        return R.fail("conditional parent must precede its child");
      const runtime::ParamSpec &PP =
          Space.param(static_cast<unsigned>(Parent));
      if (PP.Kind != runtime::ParamKind::Categorical)
        return R.fail("conditional parent must be categorical");
      if (PP.Cardinality > 64)
        return R.fail("conditional parent cardinality exceeds the mask");
      if (ParentMask == 0)
        return R.fail("conditional parameter needs an activation mask");
      if (PP.Cardinality < 64 && (ParentMask >> PP.Cardinality) != 0)
        return R.fail("activation mask has bits beyond the parent's "
                      "cardinality");
      std::vector<unsigned> Values;
      for (unsigned B = 0; B != PP.Cardinality; ++B)
        if ((ParentMask >> B) & 1)
          Values.push_back(B);
      Space.makeConditional(static_cast<unsigned>(I),
                            static_cast<unsigned>(Parent), Values);
    }
  }
  if (!R.ok())
    return false;
  Out = std::move(Space);
  return true;
}

/// Shared by the loader and validateAgainst: \p C must be a legal point
/// of \p Space -- right arity, every value inside its declared range,
/// integral where the kind demands it, and canonical (dead-branch
/// parameters pinned to their canonical value, so byte-compared configs
/// mean what they say).
static std::string checkConfigAgainstSpace(const runtime::ConfigSpace &Space,
                                           const runtime::Configuration &C) {
  if (C.size() != Space.size())
    return "configuration arity does not match the configuration space";
  for (unsigned P = 0; P != Space.size(); ++P) {
    const runtime::ParamSpec &Spec = Space.param(P);
    double V = C.real(P);
    bool IntegralKind = Spec.Kind != runtime::ParamKind::Real;
    if (V < Spec.Min || V > Spec.Max || (IntegralKind && V != std::floor(V)))
      return "value for parameter '" + Spec.Name +
             "' is outside its declared range";
    if (!Space.active(C, P) && V != Space.canonicalValue(P))
      return "parameter '" + Spec.Name +
             "' holds a non-canonical value in a dead branch";
  }
  return std::string();
}

static void saveRows(Writer &W, const std::string &Key,
                     const std::vector<size_t> &Rows) {
  std::vector<uint64_t> V(Rows.begin(), Rows.end());
  W.u64s(Key, V);
}

static bool loadRows(Reader &R, const std::string &Key, uint64_t NumInputs,
                     std::vector<size_t> &Out) {
  std::vector<uint64_t> V;
  if (!R.u64s(Key, V, 1u << 24))
    return false;
  for (uint64_t Row : V)
    if (Row >= NumInputs)
      return R.fail(Key + " entry out of range");
  Out.assign(V.begin(), V.end());
  return true;
}

std::string serialize::serializeModel(const TrainedModel &Model) {
  const core::TrainedSystem &S = Model.System;
  // Everything written here must load back: stay within the schema caps
  // the loader enforces (unreachable under --scale's [0.1, 100] clamp).
  assert(Model.Meta.Features.size() <= kMaxProperties &&
         "too many feature properties to serialize");
#ifndef NDEBUG
  for (const runtime::FeatureInfo &F : Model.Meta.Features)
    assert(F.Levels >= 1 && F.Levels <= kMaxFeatureLevels &&
           "feature level count outside the serializable range");
#endif
  assert(S.L1.Landmarks.size() <= kMaxLandmarks &&
         "too many landmarks to serialize");
  assert(S.L1.Features.rows() <= kMaxRows &&
         "too many evidence rows to serialize");
  Writer W;
  W.key("pbt-model").word("v" + std::to_string(kFormatVersion)).end();
  W.key("benchmark").text(Model.Meta.Benchmark).end();
  W.key("scale").f(Model.Meta.Scale).end();
  W.key("program-seed").u64(Model.Meta.ProgramSeed).end();
  W.key("epoch").u64(Model.Meta.Epoch).end();
  W.key("features").u64(Model.Meta.Features.size()).end();
  for (const runtime::FeatureInfo &F : Model.Meta.Features)
    W.key("feature").u64(F.Levels).text(F.Name).end();
  saveConfigSpace(W, Model.Meta.Space);

  saveRows(W, "train-rows", S.TrainRows);
  saveRows(W, "test-rows", S.TestRows);
  W.key("static-oracle").u64(S.StaticOracleLandmark).end();

  // --- Level 1: evidence tables, normalizer, clusters, landmarks. ---
  W.line("level1");
  W.matrix("features", S.L1.Features);
  W.matrix("extract-costs", S.L1.ExtractCosts);
  W.matrix("time", S.L1.Time);
  W.matrix("acc", S.L1.Acc);
  S.L1.Norm.saveTo(W);
  ml::saveKMeansResult(W, S.L1.Clusters);
  saveRows(W, "representatives", S.L1.Representatives);
  W.key("landmarks").u64(S.L1.Landmarks.size()).end();
  for (const runtime::Configuration &C : S.L1.Landmarks)
    saveConfiguration(W, C);

  // --- Level 2: refined labels, cost matrix, zoo scores, production. ---
  W.line("level2");
  std::vector<uint64_t> Labels(S.L2.TrainLabels.begin(),
                               S.L2.TrainLabels.end());
  W.u64s("train-labels", Labels);
  S.L2.Costs.saveTo(W);
  W.key("refinement-moved").f(S.L2.RefinementMoveFraction).end();
  W.key("candidates").u64(S.L2.Candidates.size()).end();
  for (const core::CandidateScore &C : S.L2.Candidates)
    W.key("candidate")
        .f(C.Objective)
        .f(C.ObjectiveNoFeat)
        .f(C.Satisfaction)
        .u64(C.Valid ? 1 : 0)
        .text(C.Name)
        .end();
  W.key("selected").text(S.L2.SelectedName).end();

  W.line("production");
  saveClassifier(W, *S.L2.Production);
  W.line("one-level-baseline");
  saveClassifier(W, *S.OneLevel);
  W.line("end");
  return W.str();
}

LoadStatus serialize::loadModel(const std::string &Text, TrainedModel &Out) {
  Reader R(Text);
  TrainedModel M;

  // Every failure is tagged with the 1-based line it was detected on:
  // sticky Reader errors already carry it; semantic checks (shape and
  // range validation) borrow the reader's current position.
  auto Failure = [&R](const std::string &Fallback) {
    if (!R.ok())
      return LoadStatus::failure(R.error());
    return LoadStatus::failure("line " + std::to_string(R.lineNumber()) +
                               ": " + Fallback);
  };

  // --- Header. ---
  if (!R.expect("pbt-model"))
    return Failure("missing header");
  std::string Version = R.word();
  if (!R.endLine())
    return Failure("bad header");
  if (Version != "v" + std::to_string(kFormatVersion))
    return Failure("unsupported model format version '" + Version +
                               "' (expected v" +
                               std::to_string(kFormatVersion) + ")");
  if (!R.expect("benchmark"))
    return Failure("missing benchmark");
  M.Meta.Benchmark = R.rest();
  if (!R.expect("scale"))
    return Failure("missing scale");
  M.Meta.Scale = R.f();
  if (!R.endLine() || !R.expect("program-seed"))
    return Failure("missing program-seed");
  M.Meta.ProgramSeed = R.u64();
  if (!R.endLine() || !R.expect("epoch"))
    return Failure("missing epoch");
  M.Meta.Epoch = R.u64();
  if (!R.endLine() || !R.expect("features"))
    return Failure("missing features");
  uint64_t NumProps = R.count(kMaxProperties);
  if (!R.endLine())
    return Failure("bad feature count");
  for (uint64_t I = 0; I != NumProps && R.ok(); ++I) {
    if (!R.expect("feature"))
      return Failure("missing feature declaration");
    runtime::FeatureInfo F;
    uint64_t Levels = R.count(kMaxFeatureLevels);
    F.Name = R.rest();
    if (!R.ok())
      return Failure("bad feature declaration");
    if (Levels == 0)
      return Failure(
          "feature '" + F.Name + "' must have at least one sampling level");
    F.Levels = static_cast<unsigned>(Levels);
    M.Meta.Features.push_back(F);
  }
  unsigned NumFlat = M.Meta.numFlatFeatures();
  if (!loadConfigSpace(R, M.Meta.Space))
    return Failure("bad configuration space");

  // --- Level 1 (read matrices first; they define N and K). ---
  core::TrainedSystem &S = M.System;
  // Rows are validated once the feature matrix fixes the input count, so
  // stash them and re-check below.
  std::vector<size_t> TrainRows, TestRows;
  if (!loadRows(R, "train-rows", UINT64_MAX, TrainRows) ||
      !loadRows(R, "test-rows", UINT64_MAX, TestRows))
    return Failure("bad row lists");
  if (!R.expect("static-oracle"))
    return Failure("missing static-oracle");
  uint64_t StaticOracle = R.u64();
  if (!R.endLine() || !R.expect("level1"))
    return Failure("missing level1 section");
  if (!R.endLine())
    return Failure("bad level1 section");

  if (!R.matrix("features", S.L1.Features) ||
      !R.matrix("extract-costs", S.L1.ExtractCosts) ||
      !R.matrix("time", S.L1.Time) || !R.matrix("acc", S.L1.Acc))
    return Failure("bad evidence tables");

  uint64_t N = S.L1.Features.rows();
  if (S.L1.Features.cols() != NumFlat)
    return Failure(
        "feature table width does not match feature declarations");
  if (!S.L1.ExtractCosts.sameShape(S.L1.Features))
    return Failure("extract-cost table shape mismatch");
  if (S.L1.Time.rows() != N || S.L1.Acc.rows() != N ||
      S.L1.Time.cols() != S.L1.Acc.cols())
    return Failure("time/accuracy table shape mismatch");
  uint64_t K = S.L1.Time.cols();
  if (K == 0)
    return Failure("model declares no landmarks");

  for (size_t Row : TrainRows)
    if (Row >= N)
      return Failure("train row out of range");
  for (size_t Row : TestRows)
    if (Row >= N)
      return Failure("test row out of range");
  if (StaticOracle >= K)
    return Failure("static oracle landmark out of range");
  S.TrainRows = std::move(TrainRows);
  S.TestRows = std::move(TestRows);
  S.StaticOracleLandmark = static_cast<unsigned>(StaticOracle);

  if (!S.L1.Norm.loadFrom(R))
    return Failure("bad normalizer");
  if (S.L1.Norm.numFeatures() != NumFlat)
    return Failure("normalizer width mismatch");
  if (!ml::loadKMeansResult(R, S.L1.Clusters))
    return Failure("bad clustering");
  if (S.L1.Clusters.Centroids.rows() != K)
    return Failure("cluster count does not match landmark count");
  if (S.L1.Clusters.Centroids.cols() != NumFlat)
    return Failure("centroid width mismatch");
  if (S.L1.Clusters.Assignment.size() != S.TrainRows.size())
    return Failure("one cluster assignment per train row required");
  if (!loadRows(R, "representatives", N, S.L1.Representatives))
    return Failure("bad representatives");
  if (S.L1.Representatives.size() != K)
    return Failure("one representative per landmark required");
  if (!R.expect("landmarks"))
    return Failure("missing landmarks");
  uint64_t NumLandmarks = R.count(kMaxLandmarks);
  if (!R.endLine())
    return Failure("bad landmark count");
  if (NumLandmarks != K)
    return Failure("landmark count does not match time table");
  for (uint64_t I = 0; I != NumLandmarks && R.ok(); ++I) {
    runtime::Configuration C;
    if (!loadConfiguration(R, C))
      return Failure("bad landmark configuration");
    // Landmarks must be legal canonical points of the recorded space:
    // in-bounds, integral where declared so, dead branches pinned.
    std::string SpaceError = checkConfigAgainstSpace(M.Meta.Space, C);
    if (!SpaceError.empty())
      return Failure("landmark " + SpaceError);
    S.L1.Landmarks.push_back(std::move(C));
  }

  // --- Level 2. ---
  if (!R.expect("level2") || !R.endLine())
    return Failure("missing level2 section");
  std::vector<uint64_t> Labels;
  if (!R.u64s("train-labels", Labels, 1u << 24))
    return Failure("bad train labels");
  if (Labels.size() != S.TrainRows.size())
    return Failure("one train label per train row required");
  for (uint64_t L : Labels)
    if (L >= K)
      return Failure("train label out of range");
  S.L2.TrainLabels.assign(Labels.begin(), Labels.end());
  if (!S.L2.Costs.loadFrom(R))
    return Failure("bad cost matrix");
  if (S.L2.Costs.numClasses() != K)
    return Failure("cost matrix size does not match landmarks");
  if (!R.expect("refinement-moved"))
    return Failure("missing refinement-moved");
  S.L2.RefinementMoveFraction = R.f();
  if (!R.endLine() || !R.expect("candidates"))
    return Failure("missing candidates");
  uint64_t NumCandidates = R.count(1u << 20);
  if (!R.endLine())
    return Failure("bad candidate count");
  for (uint64_t I = 0; I != NumCandidates && R.ok(); ++I) {
    if (!R.expect("candidate"))
      return Failure("missing candidate");
    core::CandidateScore C;
    C.Objective = R.f();
    C.ObjectiveNoFeat = R.f();
    C.Satisfaction = R.f();
    uint64_t Valid = R.u64();
    C.Name = R.rest();
    if (!R.ok())
      return Failure("bad candidate");
    if (Valid > 1)
      return Failure("candidate validity must be 0 or 1");
    C.Valid = Valid == 1;
    S.L2.Candidates.push_back(std::move(C));
  }
  if (!R.expect("selected"))
    return Failure("missing selected classifier name");
  S.L2.SelectedName = R.rest();

  if (!R.expect("production") || !R.endLine())
    return Failure("missing production section");
  S.L2.Production = loadClassifier(R, static_cast<unsigned>(K), NumFlat);
  if (!S.L2.Production)
    return Failure("bad production classifier");
  if (!R.expect("one-level-baseline") || !R.endLine())
    return Failure("missing one-level baseline section");
  S.OneLevel = loadClassifier(R, static_cast<unsigned>(K), NumFlat);
  if (!S.OneLevel)
    return Failure("bad one-level classifier");
  if (!R.expect("end") || !R.endLine())
    return Failure("missing end marker");
  if (!R.nextKey().empty() || !R.ok())
    return Failure("trailing content after end marker");

  Out = std::move(M);
  return LoadStatus::success();
}

LoadStatus serialize::writeModelText(const std::string &Path,
                                     const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return LoadStatus::failure("cannot open '" + Path + "' for writing");
  Out.write(Text.data(), static_cast<std::streamsize>(Text.size()));
  Out.flush();
  if (!Out)
    return LoadStatus::failure("short write to '" + Path + "'");
  return LoadStatus::success();
}

LoadStatus serialize::saveModelFile(const std::string &Path,
                                    const TrainedModel &Model) {
  return writeModelText(Path, serializeModel(Model));
}

LoadStatus serialize::loadModelFile(const std::string &Path,
                                    TrainedModel &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return LoadStatus::failure("cannot open '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad())
    return LoadStatus::failure("read error on '" + Path + "'");
  LoadStatus St = loadModel(SS.str(), Out);
  if (!St)
    return LoadStatus::failure("'" + Path + "': " + St.Error);
  return St;
}

LoadStatus serialize::loadCompiledModelFile(const std::string &Path,
                                            TrainedModel &Out,
                                            runtime::CompiledModel &Compiled) {
  TrainedModel Loaded;
  LoadStatus Status = loadModelFile(Path, Loaded);
  if (!Status)
    return Status;
  // The loader's bounds checks (labels below the landmark count, features
  // below the flat count, children after parents) are exactly the
  // invariants the lowering relies on, so compiling a freshly loaded
  // model cannot produce out-of-arena offsets.
  Compiled = runtime::CompiledModel::compile(Loaded);
  Out = std::move(Loaded);
  return LoadStatus::success();
}

LoadStatus serialize::validateAgainst(const TrainedModel &Model,
                                      const runtime::TunableProgram &Program) {
  std::vector<runtime::FeatureInfo> Declared = Program.features();
  if (Declared.size() != Model.Meta.Features.size())
    return LoadStatus::failure("model was trained with " +
                               std::to_string(Model.Meta.Features.size()) +
                               " features, program declares " +
                               std::to_string(Declared.size()));
  for (size_t I = 0; I != Declared.size(); ++I) {
    const runtime::FeatureInfo &A = Model.Meta.Features[I];
    const runtime::FeatureInfo &B = Declared[I];
    if (A.Name != B.Name || A.Levels != B.Levels)
      return LoadStatus::failure("feature " + std::to_string(I) +
                                 " mismatch: model has '" + A.Name + "'@" +
                                 std::to_string(A.Levels) + ", program '" +
                                 B.Name + "'@" + std::to_string(B.Levels));
  }
  // The recorded configuration space must be the program's space exactly
  // -- same parameters, bounds, and conditional structure. A drifted
  // space means the landmarks were tuned for a different program shape.
  const runtime::ConfigSpace &Space = Program.space();
  if (Model.Meta.Space.size() != Space.size())
    return LoadStatus::failure(
        "model records " + std::to_string(Model.Meta.Space.size()) +
        " tunable parameters, program declares " +
        std::to_string(Space.size()));
  for (unsigned P = 0; P != Space.size(); ++P) {
    const runtime::ParamSpec &A = Model.Meta.Space.param(P);
    const runtime::ParamSpec &B = Space.param(P);
    if (A.Name != B.Name || A.Kind != B.Kind || A.Min != B.Min ||
        A.Max != B.Max || A.Cardinality != B.Cardinality ||
        A.LogScale != B.LogScale || A.Parent != B.Parent ||
        A.ParentMask != B.ParentMask)
      return LoadStatus::failure("tunable parameter " + std::to_string(P) +
                                 " mismatch: model has '" + A.Name +
                                 "', program '" + B.Name + "'");
  }
  // Landmark configurations run inputs directly (enum casts and array
  // indexing inside the benchmarks), so every value must sit inside its
  // declared parameter range and be canonical -- arity alone is not
  // enough. (The loader already checked against the recorded space; this
  // re-checks against the live program's for models built in process.)
  for (const runtime::Configuration &C : Model.System.L1.Landmarks) {
    std::string SpaceError = checkConfigAgainstSpace(Space, C);
    if (!SpaceError.empty())
      return LoadStatus::failure("landmark " + SpaceError);
  }
  size_t NumInputs = Program.numInputs();
  for (size_t Row : Model.System.TestRows)
    if (Row >= NumInputs)
      return LoadStatus::failure(
          "model test rows exceed the program's input count");
  for (size_t Row : Model.System.TrainRows)
    if (Row >= NumInputs)
      return LoadStatus::failure(
          "model train rows exceed the program's input count");
  return LoadStatus::success();
}

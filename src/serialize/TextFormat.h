//===- serialize/TextFormat.h - Versioned line-oriented model format ------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate of the model-persistence layer: a line-oriented,
/// human-diffable text format with no external dependencies.
///
/// Every line is `key token token ...`. Doubles are printed with 17
/// significant digits, which round-trips every IEEE-754 double exactly, so
/// parse -> emit is byte-identical -- the property the golden-file
/// regression suite pins. The Writer emits; the Reader consumes with a
/// sticky error state: the first malformed line latches an error message,
/// every later accessor returns a neutral value, and loaders bail out
/// cleanly instead of crashing on truncated or corrupted input.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SERIALIZE_TEXTFORMAT_H
#define PBT_SERIALIZE_TEXTFORMAT_H

#include "linalg/Matrix.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pbt {
namespace serialize {

/// Formats \p V with enough digits that strtod recovers the exact bits.
std::string formatDouble(double V);

/// Emits the line-oriented text format. Tokens are space-separated; a line
/// is open between key() and end().
class Writer {
public:
  /// Starts a new line with its key token.
  Writer &key(const std::string &K);
  Writer &u64(uint64_t V);
  Writer &f(double V);
  /// A single whitespace-free token.
  Writer &word(const std::string &W);
  /// Rest-of-line text (may contain spaces, not newlines); must be the
  /// last token before end().
  Writer &text(const std::string &T);
  /// Terminates the current line.
  Writer &end();

  /// `key` alone on a line.
  void line(const std::string &K) { key(K).end(); }
  /// `key <n> v0 v1 ...` -- a counted vector on one line.
  void doubles(const std::string &K, const std::vector<double> &V);
  void u64s(const std::string &K, const std::vector<uint64_t> &V);
  /// `matrix <name> <rows> <cols>` followed by one `row ...` per row.
  void matrix(const std::string &Name, const linalg::Matrix &M);

  const std::string &str() const { return Out; }

private:
  std::string Out;
  bool InLine = false;
};

/// Consumes Writer output line by line with sticky error reporting. All
/// accessors are safe to call after a failure (they return zeros/empties),
/// so loaders can run linearly and check ok() at commit points.
class Reader {
public:
  explicit Reader(std::string Text);

  /// Advances to the next line and fails unless its key is \p Key.
  bool expect(const std::string &Key);
  /// Advances to the next line and returns its key ("" at end of input,
  /// which is not an error; use expect() when a line is mandatory).
  std::string nextKey();

  uint64_t u64();
  /// u64 checked against an inclusive upper bound -- the defence against
  /// corrupt counts triggering huge allocations.
  uint64_t count(uint64_t Max);
  double f();
  std::string word();
  /// Rest of the current line (trimmed of the leading separator).
  std::string rest();

  /// Fails unless every token of the current line was consumed.
  bool endLine();

  /// `key <n> v0...` with n <= MaxCount, consuming the whole line.
  bool doubles(const std::string &Key, std::vector<double> &Out,
               uint64_t MaxCount);
  bool u64s(const std::string &Key, std::vector<uint64_t> &Out,
            uint64_t MaxCount);
  /// Mirrors Writer::matrix. Dimensions are capped to keep corrupt
  /// headers from allocating unbounded memory.
  bool matrix(const std::string &Name, linalg::Matrix &Out,
              uint64_t MaxRows = 1u << 22, uint64_t MaxCols = 1u << 16);

  bool atEnd() const;
  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }
  /// 1-based line number of the current line (0 before the first
  /// advance) -- lets loaders tag their own semantic failures with the
  /// position the way fail() tags syntactic ones.
  size_t lineNumber() const { return Line; }
  /// Latches the first error (tagged with the current line number).
  /// Always returns false so loaders can `return R.fail(...)`.
  bool fail(const std::string &Msg);

private:
  bool nextToken(std::string &Tok);

  std::string Text;
  size_t Pos = 0;       // cursor within the current line
  size_t LineEnd = 0;   // one past the current line's last char
  size_t Line = 0;      // 1-based line number of the current line
  std::string Error;
};

} // namespace serialize
} // namespace pbt

#endif // PBT_SERIALIZE_TEXTFORMAT_H

//===- fleet/Supervisor.cpp - cross-process replica supervision ------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "fleet/Supervisor.h"

#include "daemon/Client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace pbt {
namespace fleet {

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleepSeconds(double S) {
  std::this_thread::sleep_for(std::chrono::duration<double>(S));
}

/// waitpid with EINTR retried -- the supervisor itself fields signals.
pid_t waitPid(pid_t Pid, int *Status, int Flags) {
  for (;;) {
    pid_t R = ::waitpid(Pid, Status, Flags);
    if (R < 0 && errno == EINTR)
      continue;
    return R;
  }
}

} // namespace

const char *replicaStateName(ReplicaState S) {
  switch (S) {
  case ReplicaState::Stopped:
    return "stopped";
  case ReplicaState::Starting:
    return "starting";
  case ReplicaState::Healthy:
    return "healthy";
  case ReplicaState::Degraded:
    return "degraded";
  case ReplicaState::Backoff:
    return "backoff";
  case ReplicaState::Quarantined:
    return "quarantined";
  }
  return "?";
}

Supervisor::Supervisor(SupervisorOptions Options) : Opts(std::move(Options)) {
  if (Opts.Replicas == 0)
    Opts.Replicas = 1;
  if (Opts.QuarantineRestarts == 0)
    Opts.QuarantineRestarts = 1;
}

Supervisor::~Supervisor() { stop(); }

bool Supervisor::start(std::string &Err) {
  if (Started) {
    Err = "supervisor already started";
    return false;
  }
  std::error_code EC;
  std::filesystem::create_directories(Opts.RuntimeDir, EC);
  if (EC) {
    Err = "create_directories('" + Opts.RuntimeDir + "'): " + EC.message();
    return false;
  }
  Fleet.assign(Opts.Replicas, Replica());
  for (size_t I = 0; I < Fleet.size(); ++I) {
    Replica &R = Fleet[I];
    std::string Base =
        Opts.RuntimeDir + "/r" + std::to_string(I);
    if (Opts.Tcp) {
      R.PortFile = Base + ".port";
    } else {
      R.SocketPath = Base + ".sock";
      R.Endpoint = "unix:" + R.SocketPath;
    }
    if (!spawn(I, Err))
      return false;
  }
  Started = true;
  StopFlag.store(false);
  Monitor = std::thread([this] { monitorLoop(); });
  return true;
}

bool Supervisor::spawn(size_t I, std::string &Err) {
  Replica &R = Fleet[I];
  std::vector<std::string> Args;
  Args.push_back(Opts.ServerExe);
  if (Opts.Tcp) {
    // First spawn binds an ephemeral port and reports it through the
    // port file; respawns pin that port so the endpoint stays stable
    // for clients holding a fixed failover list.
    ::unlink(R.PortFile.c_str());
    Args.push_back("--listen=" + Opts.Host + ":" +
                   std::to_string(R.PinnedPort));
    Args.push_back("--port-file=" + R.PortFile);
  } else {
    Args.push_back("--socket=" + R.SocketPath);
  }
  for (const std::string &A : Opts.ServerArgs)
    Args.push_back(A);

  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 1);
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    Err = std::string("fork(): ") + std::strerror(errno);
    return false;
  }
  if (Pid == 0) {
    // Child. Every supervisor-held fd is CLOEXEC (daemon/Transport.h),
    // so the replica starts clean.
    ::execv(Argv[0], Argv.data());
    _exit(127);
  }
  R.Pid = Pid;
  R.State = ReplicaState::Starting;
  R.FailedProbes = 0;
  R.SpawnedAt = nowSeconds();
  R.HealthySince = 0;
  R.NextProbeAt = R.SpawnedAt;
  return true;
}

void Supervisor::stop() {
  if (!Started)
    return;
  StopFlag.store(true);
  if (Monitor.joinable())
    Monitor.join();

  for (Replica &R : Fleet)
    if (R.Pid > 0)
      ::kill(R.Pid, SIGTERM);
  // Bounded grace, then the hammer; every child is reaped either way.
  double Deadline = nowSeconds() + 3.0;
  for (Replica &R : Fleet) {
    while (R.Pid > 0) {
      int Status = 0;
      pid_t W = waitPid(R.Pid, &Status, WNOHANG);
      if (W == R.Pid || (W < 0 && errno == ECHILD)) {
        R.Pid = -1;
        break;
      }
      if (nowSeconds() >= Deadline) {
        ::kill(R.Pid, SIGKILL);
        waitPid(R.Pid, &Status, 0);
        R.Pid = -1;
        break;
      }
      sleepSeconds(0.01);
    }
    R.State = ReplicaState::Stopped;
    if (!R.SocketPath.empty())
      ::unlink(R.SocketPath.c_str());
    if (!R.PortFile.empty())
      ::unlink(R.PortFile.c_str());
  }
  Started = false;
}

//===----------------------------------------------------------------------===//
// Monitor thread
//===----------------------------------------------------------------------===//

void Supervisor::reapAndRestart(size_t I) {
  bool Respawn = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Replica &R = Fleet[I];
    if (R.Pid > 0) {
      int Status = 0;
      pid_t W = waitPid(R.Pid, &Status, WNOHANG);
      if (W == 0)
        return; // still running
      double Now = nowSeconds();
      R.LastExitStatus = W == R.Pid ? Status : 0;
      R.Pid = -1;
      R.StoreEpoch = 0;
      R.ServiceEpoch = 0;

      // Quarantine check before scheduling another restart: M restarts
      // inside the sliding window means crash loop.
      while (!R.RestartTimes.empty() &&
             R.RestartTimes.front() < Now - Opts.QuarantineWindowSeconds)
        R.RestartTimes.pop_front();
      if (R.RestartTimes.size() >= Opts.QuarantineRestarts) {
        R.State = ReplicaState::Quarantined;
        return;
      }
      if (R.Backoff <= 0)
        R.Backoff = Opts.BackoffSeconds;
      R.State = ReplicaState::Backoff;
      R.NextRestartAt = Now + R.Backoff;
      R.Backoff = std::min(R.Backoff * 2.0, Opts.BackoffCapSeconds);
      return;
    }
    if (R.State == ReplicaState::Backoff && nowSeconds() >= R.NextRestartAt)
      Respawn = true;
  }
  if (!Respawn)
    return;
  // Off-lock: the hook may take its own locks (RolloutController) and
  // the respawn itself forks.
  if (Opts.OnRestart)
    Opts.OnRestart(I);
  std::lock_guard<std::mutex> Lock(Mu);
  Replica &R = Fleet[I];
  if (R.State != ReplicaState::Backoff)
    return;
  std::string Err;
  if (spawn(I, Err)) {
    ++R.Restarts;
    R.RestartTimes.push_back(nowSeconds());
  } else {
    // fork failed -- try again after another backoff step.
    R.NextRestartAt = nowSeconds() + R.Backoff;
  }
}

void Supervisor::probe(size_t I) {
  std::string Endpoint;
  pid_t ExpectPid = -1;
  uint64_t Gen = 0;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Replica &R = Fleet[I];
    if (R.Pid <= 0 || nowSeconds() < R.NextProbeAt)
      return;
    Gen = R.ProbeGen;
    if (Opts.Tcp && R.Endpoint.empty()) {
      // The replica writes its bound port (atomically, rename) once
      // listening; until then it is simply still starting.
      std::ifstream In(R.PortFile);
      std::string Line;
      if (In && std::getline(In, Line) && !Line.empty()) {
        R.Endpoint = Line;
        size_t Colon = Line.rfind(':');
        if (Colon != std::string::npos)
          R.PinnedPort = static_cast<uint16_t>(
              std::strtoul(Line.c_str() + Colon + 1, nullptr, 10));
      }
    }
    Endpoint = R.Endpoint;
    ExpectPid = R.Pid;
  }

  bool Ok = false;
  daemon::DaemonClient::HealthInfo Health;
  if (!Endpoint.empty()) {
    daemon::ClientOptions CO;
    CO.ConnectTimeout = Opts.HealthTimeoutSeconds;
    CO.IoTimeout = Opts.HealthTimeoutSeconds;
    CO.MaxConnectAttempts = 1;
    daemon::DaemonClient C(CO);
    std::string Err;
    // A Health from a different pid is a stale socket, not our child.
    Ok = C.connect(Endpoint, Err) && C.ping(Health, Err) &&
         Health.Pid == static_cast<uint64_t>(ExpectPid);
  }

  std::lock_guard<std::mutex> Lock(Mu);
  Replica &R = Fleet[I];
  if (R.Pid != ExpectPid || R.ProbeGen != Gen)
    return; // died, respawned, or killed while we probed
  double Now = nowSeconds();
  R.NextProbeAt = Now + Opts.HealthIntervalSeconds;
  if (Ok) {
    R.FailedProbes = 0;
    if (R.State != ReplicaState::Healthy) {
      R.State = ReplicaState::Healthy;
      R.HealthySince = Now;
    } else if (R.HealthySince > 0 &&
               Now - R.HealthySince >= Opts.BackoffResetSeconds) {
      R.Backoff = Opts.BackoffSeconds; // earned its backoff reset
    }
    uint64_t MinStore = 0, MinService = 0;
    for (const daemon::TenantHealth &T : Health.Tenants) {
      MinStore = MinStore == 0 ? T.StoreEpoch : std::min(MinStore, T.StoreEpoch);
      MinService =
          MinService == 0 ? T.ServiceEpoch : std::min(MinService, T.ServiceEpoch);
    }
    R.StoreEpoch = MinStore;
    R.ServiceEpoch = MinService;
    return;
  }
  // Failed probe: free pass during startup grace, then count toward a
  // kill -- a wedged-but-alive replica goes through the crash path.
  if (Now - R.SpawnedAt < Opts.StartupGraceSeconds)
    return;
  ++R.FailedProbes;
  if (R.State == ReplicaState::Healthy)
    R.State = ReplicaState::Degraded;
  if (R.FailedProbes >= Opts.ProbesBeforeKill) {
    ::kill(R.Pid, SIGKILL);
    R.FailedProbes = 0;
  }
}

void Supervisor::monitorLoop() {
  while (!StopFlag.load()) {
    for (size_t I = 0; I < Fleet.size(); ++I) {
      reapAndRestart(I);
      probe(I);
    }
    sleepSeconds(std::min(0.02, Opts.HealthIntervalSeconds));
  }
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

std::vector<ReplicaStatus> Supervisor::statuses() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<ReplicaStatus> Out;
  Out.reserve(Fleet.size());
  for (size_t I = 0; I < Fleet.size(); ++I) {
    const Replica &R = Fleet[I];
    ReplicaStatus S;
    S.Index = I;
    S.State = R.State;
    S.Pid = R.Pid;
    S.Endpoint = R.Endpoint;
    S.Restarts = R.Restarts;
    S.StoreEpoch = R.StoreEpoch;
    S.ServiceEpoch = R.ServiceEpoch;
    S.LastExitStatus = R.LastExitStatus;
    Out.push_back(std::move(S));
  }
  return Out;
}

std::vector<std::string> Supervisor::endpoints(bool HealthyOnly) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  for (const Replica &R : Fleet)
    if (!R.Endpoint.empty() &&
        (!HealthyOnly || R.State == ReplicaState::Healthy))
      Out.push_back(R.Endpoint);
  return Out;
}

pid_t Supervisor::pid(size_t I) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return I < Fleet.size() ? Fleet[I].Pid : -1;
}

uint64_t Supervisor::totalRestarts() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t N = 0;
  for (const Replica &R : Fleet)
    N += R.Restarts;
  return N;
}

size_t Supervisor::quarantinedCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const Replica &R : Fleet)
    N += R.State == ReplicaState::Quarantined ? 1 : 0;
  return N;
}

size_t Supervisor::healthyCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const Replica &R : Fleet)
    N += R.State == ReplicaState::Healthy ? 1 : 0;
  return N;
}

bool Supervisor::killReplica(size_t I, int Sig) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (I >= Fleet.size() || Fleet[I].Pid <= 0)
    return false;
  Replica &R = Fleet[I];
  if (::kill(R.Pid, Sig) != 0)
    return false;
  // Reflect the kill immediately: a waitAllHealthy()/waitConverged()
  // issued right after this call must not succeed off the stale Healthy
  // state before the monitor has reaped the death. The generation bump
  // also invalidates any probe already in flight, so a ping answered
  // just before the signal landed cannot resurrect the Healthy mark.
  ++R.ProbeGen;
  if (R.State == ReplicaState::Healthy || R.State == ReplicaState::Starting)
    R.State = ReplicaState::Degraded;
  R.HealthySince = 0;
  R.NextProbeAt = nowSeconds();
  return true;
}

bool Supervisor::waitAllHealthy(double TimeoutSeconds) {
  double Deadline = nowSeconds() + TimeoutSeconds;
  for (;;) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      bool All = true, Any = false;
      for (const Replica &R : Fleet) {
        if (R.State == ReplicaState::Quarantined)
          continue;
        Any = true;
        All &= R.State == ReplicaState::Healthy;
      }
      if (Any && All)
        return true;
    }
    if (nowSeconds() >= Deadline)
      return false;
    sleepSeconds(0.01);
  }
}

bool Supervisor::waitConverged(uint64_t Epoch, double TimeoutSeconds) {
  double Deadline = nowSeconds() + TimeoutSeconds;
  for (;;) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      bool All = true, Any = false;
      for (const Replica &R : Fleet) {
        if (R.State == ReplicaState::Quarantined)
          continue;
        Any = true;
        All &= R.State == ReplicaState::Healthy && R.StoreEpoch == Epoch;
      }
      if (Any && All)
        return true;
    }
    if (nowSeconds() >= Deadline)
      return false;
    sleepSeconds(0.01);
  }
}

} // namespace fleet
} // namespace pbt

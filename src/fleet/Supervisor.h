//===- fleet/Supervisor.h - cross-process replica supervision --------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-fleet supervisor: fork/execs N `pbt-serve` replica
/// processes that share one on-disk ModelStore, and keeps them alive.
///
/// Each replica is watched two ways: waitpid(WNOHANG) catches a process
/// that died (crash, SIGKILL, exec failure), and periodic Ping/Health
/// probes over the replica's own serving socket catch one that is alive
/// but wedged (a hung replica is SIGKILLed into the crash path). A dead
/// replica is restarted with bounded exponential backoff; a replica that
/// crash-loops -- M restarts inside a sliding window -- is quarantined:
/// no further restarts, the fleet keeps serving on the survivors, and an
/// operator (or test) can see exactly why via statuses().
///
/// Transport: Unix-domain sockets under RuntimeDir by default, or TCP
/// (each replica binds an ephemeral port on first spawn, written to a
/// port file; the supervisor pins that port for respawns so client
/// endpoint lists stay stable across restarts).
///
/// The OnRestart hook runs before each respawn. The fleet bench points
/// it at RolloutController::resume(): store recovery is re-run and the
/// publisher's canary re-synced onto CURRENT before the replacement
/// process loads the store -- the supervisor, not the publisher, drives
/// the resume path after a crash.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_FLEET_SUPERVISOR_H
#define PBT_FLEET_SUPERVISOR_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

namespace pbt {
namespace fleet {

struct SupervisorOptions {
  /// Path of the pbt-serve executable to fork/exec.
  std::string ServerExe;
  /// Arguments shared by every replica (e.g. "--store=DIR",
  /// "--queue=64"). The supervisor appends the per-replica transport
  /// flags itself.
  std::vector<std::string> ServerArgs;
  /// Replica processes to run.
  size_t Replicas = 3;
  /// false: Unix sockets RuntimeDir/r<i>.sock. true: TCP on Host with
  /// an ephemeral first-spawn port pinned across respawns.
  bool Tcp = false;
  std::string Host = "127.0.0.1";
  /// Directory for sockets and port files; created if missing. Keep it
  /// short -- Unix socket paths live here (sun_path is ~107 bytes).
  std::string RuntimeDir = "/tmp";
  /// Seconds between health probes of a running replica.
  double HealthIntervalSeconds = 0.25;
  /// Per-probe connect+ping budget.
  double HealthTimeoutSeconds = 2.0;
  /// A replica younger than this may fail probes without penalty (model
  /// loading takes a moment, much longer under sanitizers).
  double StartupGraceSeconds = 30.0;
  /// Consecutive failed probes (after the grace period) before a live
  /// but wedged replica is SIGKILLed into the restart path.
  unsigned ProbesBeforeKill = 8;
  /// Restart backoff: first restart after BackoffSeconds, doubling per
  /// crash up to BackoffCapSeconds; reset to the base after the replica
  /// stays healthy for BackoffResetSeconds.
  double BackoffSeconds = 0.05;
  double BackoffCapSeconds = 2.0;
  double BackoffResetSeconds = 5.0;
  /// Quarantine: this many restarts within QuarantineWindowSeconds stops
  /// the restarting -- the replica is marked Quarantined and the fleet
  /// serves on survivors.
  unsigned QuarantineRestarts = 5;
  double QuarantineWindowSeconds = 20.0;
  /// Invoked (off-lock, from the monitor thread) right before a crashed
  /// replica is respawned. The fleet bench drives
  /// RolloutController::resume() here.
  std::function<void(size_t)> OnRestart;
};

enum class ReplicaState {
  Stopped,     ///< not started, or supervisor stopped
  Starting,    ///< spawned, not yet seen healthy
  Healthy,     ///< last probe answered
  Degraded,    ///< running but failing probes (counting toward a kill)
  Backoff,     ///< dead, waiting out the restart backoff
  Quarantined, ///< crash-looped; no further restarts
};

const char *replicaStateName(ReplicaState S);

struct ReplicaStatus {
  size_t Index = 0;
  ReplicaState State = ReplicaState::Stopped;
  pid_t Pid = -1;
  std::string Endpoint; ///< connectable spec ("unix:..." / "tcp:...")
  uint64_t Restarts = 0;
  /// Min store epoch over the replica's tenants at the last good probe
  /// (0 until one succeeds) -- the fleet-convergence signal.
  uint64_t StoreEpoch = 0;
  uint64_t ServiceEpoch = 0;
  int LastExitStatus = 0; ///< raw waitpid status of the last death
};

class Supervisor {
public:
  explicit Supervisor(SupervisorOptions Options);
  ~Supervisor();

  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  /// Creates RuntimeDir, spawns every replica, starts the monitor
  /// thread. False with \p Err on spawn/setup failure.
  bool start(std::string &Err);

  /// Stops monitoring, SIGTERMs every replica, reaps with a bounded
  /// grace period (then SIGKILL). Idempotent.
  void stop();

  std::vector<ReplicaStatus> statuses() const;

  /// Endpoint specs for clients, in replica order. Endpoints are stable
  /// across restarts; with \p HealthyOnly only currently-Healthy
  /// replicas are listed.
  std::vector<std::string> endpoints(bool HealthyOnly = false) const;

  pid_t pid(size_t I) const;
  uint64_t totalRestarts() const;
  size_t quarantinedCount() const;
  size_t healthyCount() const;

  /// Sends \p Sig to replica \p I's process (chaos: SIGKILL). False if
  /// it has no live process.
  bool killReplica(size_t I, int Sig);

  /// Waits until every non-quarantined replica is Healthy. False on
  /// timeout.
  bool waitAllHealthy(double TimeoutSeconds);

  /// Waits until every non-quarantined replica is Healthy *and* reports
  /// StoreEpoch == \p Epoch, i.e. the fleet has reconverged onto
  /// CURRENT. Requires at least one such replica. False on timeout.
  bool waitConverged(uint64_t Epoch, double TimeoutSeconds);

private:
  struct Replica {
    ReplicaState State = ReplicaState::Stopped;
    pid_t Pid = -1;
    std::string Endpoint;  ///< connectable spec; empty until known (TCP)
    std::string SocketPath; ///< unix transport
    std::string PortFile;   ///< tcp transport
    uint16_t PinnedPort = 0;
    uint64_t Restarts = 0;
    uint64_t StoreEpoch = 0;
    uint64_t ServiceEpoch = 0;
    int LastExitStatus = 0;
    unsigned FailedProbes = 0;
    double SpawnedAt = 0;
    double HealthySince = 0;
    double NextRestartAt = 0;
    double NextProbeAt = 0;
    double Backoff = 0;
    /// Bumped by killReplica() so an in-flight probe that raced the
    /// signal cannot re-mark a just-killed replica Healthy.
    uint64_t ProbeGen = 0;
    std::deque<double> RestartTimes; ///< for the quarantine window
  };

  bool spawn(size_t I, std::string &Err);
  void reapAndRestart(size_t I);
  void probe(size_t I);
  void monitorLoop();

  SupervisorOptions Opts;
  mutable std::mutex Mu;
  std::vector<Replica> Fleet;
  std::thread Monitor;
  std::atomic<bool> StopFlag{false};
  bool Started = false;
};

} // namespace fleet
} // namespace pbt

#endif // PBT_FLEET_SUPERVISOR_H

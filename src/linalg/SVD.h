//===- linalg/SVD.h - Singular value decomposition methods -----------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three SVD techniques the svd benchmark chooses among (the paper's
/// "choices include ... changing the techniques used to find these
/// eigenvalues"):
///
///   * one-sided Jacobi: accurate full SVD, cost ~ O(sweeps * m n^2);
///   * subspace (block power) iteration: top-k factors only, cheap when k
///     is small relative to n;
///   * randomized sketching (Halko-Martinsson-Tropp): Gaussian sketch plus
///     power refinement, cheapest for very low effective rank.
///
/// All methods report work through the deterministic flop counter so the
/// autotuner sees realistic cost crossovers between them.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_LINALG_SVD_H
#define PBT_LINALG_SVD_H

#include "linalg/Matrix.h"

#include <vector>

namespace pbt {
namespace linalg {

/// A (possibly truncated) SVD: A ~= U * diag(Sigma) * V^T, singular values
/// in non-increasing order.
struct SVDResult {
  Matrix U;                  // m x r
  std::vector<double> Sigma; // r
  Matrix V;                  // n x r
};

struct JacobiOptions {
  unsigned MaxSweeps = 30;
  /// Sweep convergence threshold on the off-diagonal/diagonal ratio.
  double Tolerance = 1e-12;
};

/// Full SVD by the one-sided Jacobi method. Requires rows >= cols.
SVDResult jacobiSVD(const Matrix &A, const JacobiOptions &Options = {},
                    support::CostCounter *Cost = nullptr);

/// Top-\p K SVD by block subspace iteration on A^T A (without forming it).
/// \p Iterations controls refinement accuracy.
SVDResult subspaceSVD(const Matrix &A, unsigned K, unsigned Iterations,
                      support::Rng &Rng, support::CostCounter *Cost = nullptr);

/// Top-\p K SVD by randomized range finding: Gaussian sketch of width
/// K + \p Oversample, \p PowerIterations passes of A A^T refinement, then a
/// small exact SVD of the projected matrix.
SVDResult randomizedSVD(const Matrix &A, unsigned K, unsigned Oversample,
                        unsigned PowerIterations, support::Rng &Rng,
                        support::CostCounter *Cost = nullptr);

/// Reconstructs the rank-\p K approximation from a (>=K)-factor SVDResult.
Matrix rankKApprox(const SVDResult &SVD, unsigned K,
                   support::CostCounter *Cost = nullptr);

} // namespace linalg
} // namespace pbt

#endif // PBT_LINALG_SVD_H

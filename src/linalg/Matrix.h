//===- linalg/Matrix.h - Dense row-major matrices --------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense row-major double matrix with the operations needed by the SVD
/// benchmark substrate (QR, Jacobi SVD, randomized sketching) and by the
/// ML substrate (feature tables, K-means centroids). Heavy kernels accept
/// an optional CostCounter so benchmark code can charge flops to the
/// deterministic cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_LINALG_MATRIX_H
#define PBT_LINALG_MATRIX_H

#include "support/Cost.h"
#include "support/Random.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace pbt {
namespace linalg {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  bool empty() const { return Data.empty(); }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  double *rowPtr(size_t R) {
    assert(R < NumRows && "row out of range");
    return Data.data() + R * NumCols;
  }
  const double *rowPtr(size_t R) const {
    assert(R < NumRows && "row out of range");
    return Data.data() + R * NumCols;
  }

  const std::vector<double> &data() const { return Data; }
  std::vector<double> &data() { return Data; }

  static Matrix identity(size_t N);
  /// Entries i.i.d. Gaussian(0, 1).
  static Matrix gaussian(size_t Rows, size_t Cols, support::Rng &Rng);
  /// Adopts \p Data (row-major, size Rows*Cols) without zero-filling
  /// first -- for loaders that already hold the backing store.
  static Matrix fromData(size_t Rows, size_t Cols, std::vector<double> Data) {
    assert(Data.size() == Rows * Cols && "backing store size mismatch");
    Matrix M;
    M.NumRows = Rows;
    M.NumCols = Cols;
    M.Data = std::move(Data);
    return M;
  }

  Matrix transposed() const;
  double frobeniusNorm() const;

  /// Frobenius norm of (this - Other); matrices must be the same shape.
  double frobeniusDistance(const Matrix &Other) const;

  bool sameShape(const Matrix &Other) const {
    return NumRows == Other.NumRows && NumCols == Other.NumCols;
  }

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// C = A * B. Charges 2*m*n*k flops to \p Cost when provided.
Matrix multiply(const Matrix &A, const Matrix &B,
                support::CostCounter *Cost = nullptr);

/// C = A^T * B without forming A^T.
Matrix multiplyTransposedA(const Matrix &A, const Matrix &B,
                           support::CostCounter *Cost = nullptr);

/// C = A * B^T without forming B^T.
Matrix multiplyTransposedB(const Matrix &A, const Matrix &B,
                           support::CostCounter *Cost = nullptr);

} // namespace linalg
} // namespace pbt

#endif // PBT_LINALG_MATRIX_H

//===- linalg/QR.h - Householder QR factorisation --------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin (economy) QR factorisation via Householder reflections, used to
/// re-orthonormalise subspace iteration bases and the randomized-SVD
/// sketch in the svd benchmark substrate.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_LINALG_QR_H
#define PBT_LINALG_QR_H

#include "linalg/Matrix.h"

namespace pbt {
namespace linalg {

/// Result of a thin QR factorisation A (m x n, m >= n) = Q (m x n) R (n x n).
struct QRResult {
  Matrix Q;
  Matrix R;
};

/// Computes the thin QR factorisation of \p A by Householder reflections.
/// Requires rows >= cols. Charges ~4*m*n^2 flops to \p Cost when provided.
QRResult thinQR(const Matrix &A, support::CostCounter *Cost = nullptr);

/// Convenience: just the orthonormal basis Q of A's column space.
Matrix orthonormalize(const Matrix &A, support::CostCounter *Cost = nullptr);

} // namespace linalg
} // namespace pbt

#endif // PBT_LINALG_QR_H

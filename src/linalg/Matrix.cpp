//===- linalg/Matrix.cpp ---------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "linalg/Matrix.h"

#include <algorithm>
#include <cmath>

using namespace pbt;
using namespace pbt::linalg;

Matrix Matrix::identity(size_t N) {
  Matrix I(N, N, 0.0);
  for (size_t K = 0; K != N; ++K)
    I.at(K, K) = 1.0;
  return I;
}

Matrix Matrix::gaussian(size_t Rows, size_t Cols, support::Rng &Rng) {
  Matrix M(Rows, Cols);
  for (double &X : M.data())
    X = Rng.gaussian();
  return M;
}

Matrix Matrix::transposed() const {
  Matrix T(NumCols, NumRows);
  // Blocked transpose: the naive double loop strides the output by
  // NumRows doubles every element, missing cache on every store once the
  // matrix outgrows L1. Walking 32x32 tiles keeps both the source rows
  // and the destination rows of a tile resident while it is transposed.
  constexpr size_t Block = 32;
  for (size_t RB = 0; RB < NumRows; RB += Block) {
    size_t RE = std::min(RB + Block, NumRows);
    for (size_t CB = 0; CB < NumCols; CB += Block) {
      size_t CE = std::min(CB + Block, NumCols);
      for (size_t R = RB; R != RE; ++R) {
        const double *Src = Data.data() + R * NumCols;
        for (size_t C = CB; C != CE; ++C)
          T.Data[C * NumRows + R] = Src[C];
      }
    }
  }
  return T;
}

double Matrix::frobeniusNorm() const {
  double Sum = 0.0;
  for (double X : Data)
    Sum += X * X;
  return std::sqrt(Sum);
}

double Matrix::frobeniusDistance(const Matrix &Other) const {
  assert(sameShape(Other) && "shape mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I != Data.size(); ++I) {
    double D = Data[I] - Other.Data[I];
    Sum += D * D;
  }
  return std::sqrt(Sum);
}

Matrix linalg::multiply(const Matrix &A, const Matrix &B,
                        support::CostCounter *Cost) {
  assert(A.cols() == B.rows() && "inner dimension mismatch");
  Matrix C(A.rows(), B.cols(), 0.0);
  // i-k-j loop order for row-major locality.
  for (size_t I = 0; I != A.rows(); ++I) {
    const double *ARow = A.rowPtr(I);
    double *CRow = C.rowPtr(I);
    for (size_t K = 0; K != A.cols(); ++K) {
      double AIK = ARow[K];
      if (AIK == 0.0)
        continue;
      const double *BRow = B.rowPtr(K);
      for (size_t J = 0; J != B.cols(); ++J)
        CRow[J] += AIK * BRow[J];
    }
  }
  if (Cost)
    Cost->addFlops(2.0 * static_cast<double>(A.rows()) *
                   static_cast<double>(A.cols()) *
                   static_cast<double>(B.cols()));
  return C;
}

Matrix linalg::multiplyTransposedA(const Matrix &A, const Matrix &B,
                                   support::CostCounter *Cost) {
  assert(A.rows() == B.rows() && "inner dimension mismatch");
  Matrix C(A.cols(), B.cols(), 0.0);
  for (size_t K = 0; K != A.rows(); ++K) {
    const double *ARow = A.rowPtr(K);
    const double *BRow = B.rowPtr(K);
    for (size_t I = 0; I != A.cols(); ++I) {
      double AKI = ARow[I];
      if (AKI == 0.0)
        continue;
      double *CRow = C.rowPtr(I);
      for (size_t J = 0; J != B.cols(); ++J)
        CRow[J] += AKI * BRow[J];
    }
  }
  if (Cost)
    Cost->addFlops(2.0 * static_cast<double>(A.cols()) *
                   static_cast<double>(A.rows()) *
                   static_cast<double>(B.cols()));
  return C;
}

Matrix linalg::multiplyTransposedB(const Matrix &A, const Matrix &B,
                                   support::CostCounter *Cost) {
  assert(A.cols() == B.cols() && "inner dimension mismatch");
  Matrix C(A.rows(), B.rows(), 0.0);
  for (size_t I = 0; I != A.rows(); ++I) {
    const double *ARow = A.rowPtr(I);
    double *CRow = C.rowPtr(I);
    for (size_t J = 0; J != B.rows(); ++J) {
      const double *BRow = B.rowPtr(J);
      double Sum = 0.0;
      for (size_t K = 0; K != A.cols(); ++K)
        Sum += ARow[K] * BRow[K];
      CRow[J] = Sum;
    }
  }
  if (Cost)
    Cost->addFlops(2.0 * static_cast<double>(A.rows()) *
                   static_cast<double>(B.rows()) *
                   static_cast<double>(A.cols()));
  return C;
}

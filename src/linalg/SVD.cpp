//===- linalg/SVD.cpp ------------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "linalg/SVD.h"
#include "linalg/QR.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace pbt;
using namespace pbt::linalg;

/// Sorts (Sigma, U, V) by non-increasing singular value.
static void sortBySigma(SVDResult &R) {
  size_t N = R.Sigma.size();
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return R.Sigma[A] > R.Sigma[B];
  });
  std::vector<double> S(N);
  Matrix U(R.U.rows(), N), V(R.V.rows(), N);
  for (size_t J = 0; J != N; ++J) {
    S[J] = R.Sigma[Order[J]];
    for (size_t I = 0; I != R.U.rows(); ++I)
      U.at(I, J) = R.U.at(I, Order[J]);
    for (size_t I = 0; I != R.V.rows(); ++I)
      V.at(I, J) = R.V.at(I, Order[J]);
  }
  R.Sigma = std::move(S);
  R.U = std::move(U);
  R.V = std::move(V);
}

SVDResult linalg::jacobiSVD(const Matrix &A, const JacobiOptions &Options,
                            support::CostCounter *Cost) {
  size_t M = A.rows(), N = A.cols();
  assert(M >= N && "jacobiSVD requires rows >= cols");

  // One-sided Jacobi: rotate column pairs of W = A V until all columns are
  // mutually orthogonal; then sigma_j = ||w_j||, u_j = w_j / sigma_j.
  Matrix W = A;
  Matrix V = Matrix::identity(N);
  double Flops = 0.0;

  for (unsigned Sweep = 0; Sweep != Options.MaxSweeps; ++Sweep) {
    double OffDiagonal = 0.0;
    double Diagonal = 0.0;
    for (size_t P = 0; P + 1 < N; ++P) {
      for (size_t Q = P + 1; Q != N; ++Q) {
        // Gram entries for the (P, Q) column pair.
        double App = 0.0, Aqq = 0.0, Apq = 0.0;
        for (size_t I = 0; I != M; ++I) {
          double WP = W.at(I, P), WQ = W.at(I, Q);
          App += WP * WP;
          Aqq += WQ * WQ;
          Apq += WP * WQ;
        }
        Flops += 6.0 * static_cast<double>(M);
        Diagonal += App + Aqq;
        OffDiagonal += std::abs(Apq);
        if (std::abs(Apq) <=
            Options.Tolerance * std::sqrt(App * Aqq) + 1e-300)
          continue;
        // Jacobi rotation annihilating the (P, Q) Gram entry.
        double Tau = (Aqq - App) / (2.0 * Apq);
        double T = (Tau >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(Tau) + std::sqrt(1.0 + Tau * Tau));
        double C = 1.0 / std::sqrt(1.0 + T * T);
        double S = C * T;
        for (size_t I = 0; I != M; ++I) {
          double WP = W.at(I, P), WQ = W.at(I, Q);
          W.at(I, P) = C * WP - S * WQ;
          W.at(I, Q) = S * WP + C * WQ;
        }
        for (size_t I = 0; I != N; ++I) {
          double VP = V.at(I, P), VQ = V.at(I, Q);
          V.at(I, P) = C * VP - S * VQ;
          V.at(I, Q) = S * VP + C * VQ;
        }
        Flops += 6.0 * static_cast<double>(M + N);
      }
    }
    if (Diagonal == 0.0 || OffDiagonal <= Options.Tolerance * Diagonal)
      break;
  }

  SVDResult R;
  R.Sigma.resize(N);
  R.U = Matrix(M, N);
  R.V = std::move(V);
  for (size_t J = 0; J != N; ++J) {
    double Norm = 0.0;
    for (size_t I = 0; I != M; ++I)
      Norm += W.at(I, J) * W.at(I, J);
    Norm = std::sqrt(Norm);
    R.Sigma[J] = Norm;
    if (Norm > 0.0) {
      for (size_t I = 0; I != M; ++I)
        R.U.at(I, J) = W.at(I, J) / Norm;
    }
  }
  Flops += 3.0 * static_cast<double>(M) * static_cast<double>(N);
  if (Cost)
    Cost->addFlops(Flops);
  sortBySigma(R);
  return R;
}

SVDResult linalg::subspaceSVD(const Matrix &A, unsigned K, unsigned Iterations,
                              support::Rng &Rng, support::CostCounter *Cost) {
  size_t N = A.cols();
  assert(K >= 1 && "subspaceSVD needs K >= 1");
  K = static_cast<unsigned>(std::min<size_t>(K, N));

  // Orthogonal iteration on A^T A without forming it: Q <- orth(A^T (A Q)).
  Matrix Q = orthonormalize(Matrix::gaussian(N, K, Rng), Cost);
  for (unsigned It = 0; It != std::max(1u, Iterations); ++It) {
    Matrix Y = multiply(A, Q, Cost);            // m x k
    Matrix Z = multiplyTransposedA(A, Y, Cost); // n x k
    Q = orthonormalize(Z, Cost);
  }

  // Rayleigh-Ritz: small eigenproblem of Q^T A^T A Q via Jacobi SVD of AQ.
  Matrix AQ = multiply(A, Q, Cost); // m x k
  SVDResult Small = jacobiSVD(AQ, {}, Cost);

  SVDResult R;
  R.U = std::move(Small.U);                // m x k
  R.Sigma = std::move(Small.Sigma);        // k
  R.V = multiply(Q, Small.V, Cost);        // n x k
  sortBySigma(R);
  return R;
}

SVDResult linalg::randomizedSVD(const Matrix &A, unsigned K,
                                unsigned Oversample, unsigned PowerIterations,
                                support::Rng &Rng,
                                support::CostCounter *Cost) {
  size_t M = A.rows(), N = A.cols();
  assert(K >= 1 && "randomizedSVD needs K >= 1");
  size_t Width = std::min<size_t>(N, K + Oversample);
  Width = std::min(Width, M);

  // Stage A: range finding. Y = A * Omega, refined by power iterations.
  Matrix Omega = Matrix::gaussian(N, Width, Rng);
  Matrix Y = multiply(A, Omega, Cost); // m x w
  Matrix Q = orthonormalize(Y, Cost);
  for (unsigned It = 0; It != PowerIterations; ++It) {
    Matrix Z = multiplyTransposedA(A, Q, Cost); // n x w
    Z = orthonormalize(Z, Cost);
    Q = orthonormalize(multiply(A, Z, Cost), Cost);
  }

  // Stage B: B = Q^T A is small (w x n); take its exact SVD.
  Matrix B = multiplyTransposedA(Q, A, Cost); // w x n
  // jacobiSVD needs rows >= cols; operate on B^T (n x w) and swap factors.
  SVDResult SmallT = jacobiSVD(B.transposed(), {}, Cost);
  // B^T = Us S Vs^T  =>  B = Vs S Us^T  =>  A ~= (Q Vs) S Us^T.
  SVDResult R;
  R.U = multiply(Q, SmallT.V, Cost);
  R.Sigma = std::move(SmallT.Sigma);
  R.V = std::move(SmallT.U);
  sortBySigma(R);

  // Truncate to K factors.
  size_t Keep = std::min<size_t>(K, R.Sigma.size());
  Matrix U(R.U.rows(), Keep), V(R.V.rows(), Keep);
  for (size_t J = 0; J != Keep; ++J) {
    for (size_t I = 0; I != U.rows(); ++I)
      U.at(I, J) = R.U.at(I, J);
    for (size_t I = 0; I != V.rows(); ++I)
      V.at(I, J) = R.V.at(I, J);
  }
  R.U = std::move(U);
  R.V = std::move(V);
  R.Sigma.resize(Keep);
  return R;
}

Matrix linalg::rankKApprox(const SVDResult &SVD, unsigned K,
                           support::CostCounter *Cost) {
  size_t Rank = std::min<size_t>(K, SVD.Sigma.size());
  size_t M = SVD.U.rows(), N = SVD.V.rows();
  Matrix A(M, N, 0.0);
  for (size_t R = 0; R != Rank; ++R) {
    double S = SVD.Sigma[R];
    if (S == 0.0)
      continue;
    for (size_t I = 0; I != M; ++I) {
      double UIS = SVD.U.at(I, R) * S;
      if (UIS == 0.0)
        continue;
      for (size_t J = 0; J != N; ++J)
        A.at(I, J) += UIS * SVD.V.at(J, R);
    }
  }
  if (Cost)
    Cost->addFlops(2.0 * static_cast<double>(Rank) * static_cast<double>(M) *
                   static_cast<double>(N));
  return A;
}

//===- linalg/QR.cpp -------------------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "linalg/QR.h"

#include <cmath>

using namespace pbt;
using namespace pbt::linalg;

QRResult linalg::thinQR(const Matrix &A, support::CostCounter *Cost) {
  size_t M = A.rows(), N = A.cols();
  assert(M >= N && "thinQR requires rows >= cols");

  // Work on a copy; accumulate Householder vectors in-place below the
  // diagonal, then form thin Q by applying reflectors to the identity.
  Matrix R = A;
  std::vector<std::vector<double>> Reflectors;
  Reflectors.reserve(N);

  for (size_t K = 0; K != N; ++K) {
    // Build the Householder vector for column K.
    double Norm = 0.0;
    for (size_t I = K; I != M; ++I)
      Norm += R.at(I, K) * R.at(I, K);
    Norm = std::sqrt(Norm);
    std::vector<double> V(M - K, 0.0);
    if (Norm == 0.0) {
      // Zero column: identity reflector.
      Reflectors.push_back(std::move(V));
      continue;
    }
    double Alpha = R.at(K, K) >= 0.0 ? -Norm : Norm;
    for (size_t I = K; I != M; ++I)
      V[I - K] = R.at(I, K);
    V[0] -= Alpha;
    double VNorm2 = 0.0;
    for (double X : V)
      VNorm2 += X * X;
    if (VNorm2 == 0.0) {
      Reflectors.push_back(std::move(V));
      continue;
    }
    // Apply (I - 2 v v^T / v^T v) to R[K:, K:].
    for (size_t J = K; J != N; ++J) {
      double Dot = 0.0;
      for (size_t I = K; I != M; ++I)
        Dot += V[I - K] * R.at(I, J);
      double Scale = 2.0 * Dot / VNorm2;
      for (size_t I = K; I != M; ++I)
        R.at(I, J) -= Scale * V[I - K];
    }
    Reflectors.push_back(std::move(V));
  }

  // Zero out the (numerically tiny) subdiagonal of R and truncate.
  Matrix RThin(N, N, 0.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I; J != N; ++J)
      RThin.at(I, J) = R.at(I, J);

  // Form thin Q = H_0 H_1 ... H_{n-1} * I_{m x n} by applying reflectors in
  // reverse to the first N columns of the identity.
  Matrix Q(M, N, 0.0);
  for (size_t J = 0; J != N; ++J)
    Q.at(J, J) = 1.0;
  for (size_t KPlus1 = N; KPlus1 != 0; --KPlus1) {
    size_t K = KPlus1 - 1;
    const std::vector<double> &V = Reflectors[K];
    double VNorm2 = 0.0;
    for (double X : V)
      VNorm2 += X * X;
    if (VNorm2 == 0.0)
      continue;
    for (size_t J = 0; J != N; ++J) {
      double Dot = 0.0;
      for (size_t I = K; I != M; ++I)
        Dot += V[I - K] * Q.at(I, J);
      double Scale = 2.0 * Dot / VNorm2;
      for (size_t I = K; I != M; ++I)
        Q.at(I, J) -= Scale * V[I - K];
    }
  }

  if (Cost)
    Cost->addFlops(4.0 * static_cast<double>(M) * static_cast<double>(N) *
                   static_cast<double>(N));
  return {std::move(Q), std::move(RThin)};
}

Matrix linalg::orthonormalize(const Matrix &A, support::CostCounter *Cost) {
  return thinQR(A, Cost).Q;
}

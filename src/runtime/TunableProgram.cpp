//===- runtime/TunableProgram.cpp ------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/TunableProgram.h"

#include <cstdio>

using namespace pbt;
using namespace pbt::runtime;

TunableProgram::~TunableProgram() = default;

std::string TunableProgram::describeInput(size_t Input) const {
  return "input " + std::to_string(Input);
}

std::string
TunableProgram::describeConfiguration(const Configuration &Config) const {
  const ConfigSpace &S = space();
  std::string Out;
  for (unsigned I = 0; I != S.size() && I != Config.size(); ++I) {
    if (I)
      Out += " ";
    const ParamSpec &P = S.param(I);
    Out += P.Name + "=";
    if (P.Kind == ParamKind::Real) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.3g", Config.real(I));
      Out += Buf;
    } else {
      Out += std::to_string(Config.integer(I));
    }
  }
  return Out;
}

unsigned TunableProgram::numMLFeatures() const {
  unsigned Total = 0;
  for (const FeatureInfo &F : features())
    Total += F.Levels;
  return Total;
}

FeatureIndex::FeatureIndex(const std::vector<FeatureInfo> &Features) {
  Offsets.reserve(Features.size());
  Counts.reserve(Features.size());
  Names.reserve(Features.size());
  for (const FeatureInfo &F : Features) {
    assert(F.Levels >= 1 && "feature must have at least one level");
    Offsets.push_back(Total);
    Counts.push_back(F.Levels);
    Names.push_back(F.Name);
    Total += F.Levels;
  }
}

unsigned FeatureIndex::levels(unsigned Property) const {
  assert(Property < Counts.size() && "property out of range");
  return Counts[Property];
}

unsigned FeatureIndex::flat(unsigned Property, unsigned Level) const {
  assert(Property < Offsets.size() && "property out of range");
  assert(Level < Counts[Property] && "level out of range");
  return Offsets[Property] + Level;
}

unsigned FeatureIndex::propertyOf(unsigned Flat) const {
  assert(Flat < Total && "flat feature out of range");
  unsigned P = 0;
  while (P + 1 < Offsets.size() && Offsets[P + 1] <= Flat)
    ++P;
  return P;
}

unsigned FeatureIndex::levelOf(unsigned Flat) const {
  return Flat - Offsets[propertyOf(Flat)];
}

std::string FeatureIndex::flatName(unsigned Flat) const {
  unsigned P = propertyOf(Flat);
  return Names[P] + "@" + std::to_string(levelOf(Flat));
}

//===- runtime/SimdLanes.cpp - Lane engine dispatch table -----------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/SimdLanes.h"

using namespace pbt;
using namespace pbt::runtime;

namespace pbt {
namespace runtime {
// Defined one per ISA TU (SimdLanesScalar/Sse42/Avx2.cpp).
const LaneEngine &laneEngineScalar();
const LaneEngine &laneEngineSse42();
const LaneEngine &laneEngineAvx2();
} // namespace runtime
} // namespace pbt

const LaneEngine &runtime::laneEngine(support::SimdTier Tier) {
  switch (Tier) {
  case support::SimdTier::Scalar:
    return laneEngineScalar();
  case support::SimdTier::Sse42:
    return laneEngineSse42();
  case support::SimdTier::Avx2:
    return laneEngineAvx2();
  }
  return laneEngineScalar();
}

std::vector<const LaneEngine *> runtime::availableLaneEngines() {
  std::vector<const LaneEngine *> Engines;
  for (support::SimdTier Tier : support::availableSimdTiers())
    Engines.push_back(&laneEngine(Tier));
  return Engines;
}

//===- runtime/PredictionService.cpp ----------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/PredictionService.h"

#include "core/FeatureProbe.h"

#include <cassert>

using namespace pbt;
using namespace pbt::runtime;

PredictionService::PredictionService(serialize::TrainedModel ModelIn)
    : Model(std::move(ModelIn)) {
  Index.emplace(Model.Meta.Features);
}

serialize::LoadStatus PredictionService::loadFile(const std::string &Path) {
  serialize::TrainedModel Loaded;
  serialize::LoadStatus Status = serialize::loadModelFile(Path, Loaded);
  if (!Status) {
    // The documented contract: a failed load empties the service rather
    // than silently serving the previously loaded model.
    *this = PredictionService();
    return Status;
  }
  Model = std::move(Loaded);
  Index.emplace(Model.Meta.Features);
  Program = nullptr;
  Bound = false;
  Memo.clear();
  Totals = Stats();
  return serialize::LoadStatus::success();
}

serialize::LoadStatus PredictionService::bind(const TunableProgram &P) {
  // The documented contract: a failed bind leaves the service unbound --
  // it must not keep serving a previously bound program.
  Program = nullptr;
  Bound = false;
  Memo.clear();
  if (!Model.System.L2.Production)
    return serialize::LoadStatus::failure("no model loaded");
  serialize::LoadStatus Status = serialize::validateAgainst(Model, P);
  if (!Status)
    return Status;
  Program = &P;
  Bound = true;
  return serialize::LoadStatus::success();
}

void PredictionService::clearMemo() { Memo.clear(); }

PredictionService::Decision
PredictionService::decideWith(const core::InputClassifier &Classifier,
                              size_t Input) {
  assert(ready() && "decide() before a successful loadFile()+bind()");
  assert(Input < Program->numInputs() && "input out of range");

  unsigned NumFlat = Index->numFlat();
  MemoEntry &E = Memo[Input];
  if (E.Values.empty()) {
    E.Values.assign(NumFlat, 0.0);
    E.Have.assign(NumFlat, 0);
  }

  Decision D;
  core::FeatureProbe Probe(NumFlat, [this, &E, &D, Input](unsigned Flat) {
    if (E.Have[Flat])
      return std::make_pair(E.Values[Flat], 0.0);
    support::CostCounter C;
    double V = this->Program->extractFeature(
        Input, this->Index->propertyOf(Flat), this->Index->levelOf(Flat), C);
    E.Values[Flat] = V;
    E.Have[Flat] = 1;
    ++D.FeaturesExtracted;
    return std::make_pair(V, C.units());
  });

  unsigned Landmark = Classifier.classify(Probe);
  // Loaders bound every classifier's predictions by the landmark count,
  // so this holds for any model that passed validation.
  assert(Landmark < Model.System.L1.Landmarks.size() &&
         "classifier predicted a missing landmark");
  D.Landmark = Landmark;
  D.Config = &Model.System.L1.Landmarks[Landmark];
  D.FeatureCost = Probe.totalCost();
  D.Memoized = D.FeaturesExtracted == 0;

  ++Totals.Calls;
  if (D.Memoized)
    ++Totals.MemoizedCalls;
  Totals.FeaturesExtracted += D.FeaturesExtracted;
  Totals.FeatureCostPaid += D.FeatureCost;
  return D;
}

PredictionService::Decision PredictionService::decide(size_t Input) {
  return decideWith(*Model.System.L2.Production, Input);
}

PredictionService::Decision PredictionService::decideOneLevel(size_t Input) {
  return decideWith(*Model.System.OneLevel, Input);
}

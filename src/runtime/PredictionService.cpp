//===- runtime/PredictionService.cpp ----------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/PredictionService.h"

#include "core/FeatureProbe.h"

#include <algorithm>
#include <cassert>

using namespace pbt;
using namespace pbt::runtime;

PredictionService::PredictionService(serialize::TrainedModel ModelIn)
    : Model(std::move(ModelIn)) {
  Index.emplace(Model.Meta.Features);
  Compiled = CompiledModel::compile(Model);
  MainScratch = Compiled.makeScratch();
}

serialize::LoadStatus PredictionService::loadFile(const std::string &Path) {
  serialize::TrainedModel Loaded;
  CompiledModel LoadedCompiled;
  serialize::LoadStatus Status =
      serialize::loadCompiledModelFile(Path, Loaded, LoadedCompiled);
  if (!Status) {
    // The documented contract: a failed load empties the service rather
    // than silently serving the previously loaded model.
    *this = PredictionService();
    return Status;
  }
  Model = std::move(Loaded);
  Compiled = std::move(LoadedCompiled);
  MainScratch = Compiled.makeScratch();
  Index.emplace(Model.Meta.Features);
  Program = nullptr;
  Bound = false;
  Memo.clear();
  Totals = Stats();
  return serialize::LoadStatus::success();
}

serialize::LoadStatus PredictionService::bind(const TunableProgram &P) {
  // The documented contract: a failed bind leaves the service unbound --
  // it must not keep serving a previously bound program.
  Program = nullptr;
  Bound = false;
  Memo.clear();
  if (!Model.System.L2.Production)
    return serialize::LoadStatus::failure("no model loaded");
  serialize::LoadStatus Status = serialize::validateAgainst(Model, P);
  if (!Status)
    return Status;
  Program = &P;
  Bound = true;
  // One slot per program input: batch shards index this concurrently, so
  // it must never grow (or rehash) on the serving path.
  Memo.assign(P.numInputs(), MemoEntry());
  InterpMemo.clear();
  return serialize::LoadStatus::success();
}

void PredictionService::clearMemo() {
  Memo.assign(Memo.size(), MemoEntry());
  InterpMemo.clear();
}

void PredictionService::recordTotals(const Decision &D) {
  ++Totals.Calls;
  if (D.Memoized)
    ++Totals.MemoizedCalls;
  Totals.FeaturesExtracted += D.FeaturesExtracted;
  Totals.FeatureCostPaid += D.FeatureCost;
}

PredictionService::Decision
PredictionService::decideCompiled(size_t Input, bool OneLevelPath,
                                  CompiledModel::Scratch &S) {
  assert(ready() && "decide() before a successful loadFile()+bind()");
  assert(Input < Memo.size() && "input out of range");

  unsigned NumFlat = Index->numFlat();
  MemoEntry &E = Memo[Input];
  // Repeat decision: the choice was already derived from this input's
  // memoized features, and re-running the classifier over a memo is
  // deterministic -- serve the cached landmark with the exact Decision a
  // re-classification over memoized features would produce.
  int32_t Cached = E.Decided[OneLevelPath ? 1 : 0];
  if (Cached >= 0) {
    Decision D;
    D.Landmark = static_cast<unsigned>(Cached);
    D.Config = &Model.System.L1.Landmarks[D.Landmark];
    D.Memoized = true;
    return D;
  }
  if (E.Have.empty()) {
    E.Values.assign(NumFlat, 0.0);
    E.Have.assign(NumFlat, 0);
  }

  Decision D;
  // Memo-backed extractor, inlined into the compiled walk (no
  // std::function, no probe allocation). Costs accumulate in examination
  // order, exactly like the interpreted probe, so the per-call cost is
  // bit-identical across the two paths.
  auto Get = [&](unsigned Flat) -> double {
    if (E.Have[Flat])
      return E.Values[Flat];
    support::CostCounter C;
    double V = Program->extractFeature(Input, Index->propertyOf(Flat),
                                       Index->levelOf(Flat), C);
    E.Values[Flat] = V;
    E.Have[Flat] = 1;
    D.FeatureCost += C.units();
    ++D.FeaturesExtracted;
    return V;
  };

  unsigned Landmark = OneLevelPath ? Compiled.decideOneLevel(S, Get)
                                   : Compiled.decideProduction(S, Get);
  // Loaders bound every classifier's predictions by the landmark count,
  // so this holds for any model that passed validation.
  assert(Landmark < Model.System.L1.Landmarks.size() &&
         "classifier predicted a missing landmark");
  D.Landmark = Landmark;
  D.Config = &Model.System.L1.Landmarks[Landmark];
  D.Memoized = D.FeaturesExtracted == 0;
  E.Decided[OneLevelPath ? 1 : 0] = static_cast<int32_t>(Landmark);
  return D;
}

PredictionService::Decision PredictionService::decide(size_t Input) {
  Decision D = decideCompiled(Input, /*OneLevelPath=*/false, MainScratch);
  recordTotals(D);
  return D;
}

PredictionService::Decision PredictionService::decideOneLevel(size_t Input) {
  Decision D = decideCompiled(Input, /*OneLevelPath=*/true, MainScratch);
  recordTotals(D);
  return D;
}

std::vector<PredictionService::Decision>
PredictionService::decideBatch(const std::vector<size_t> &Inputs,
                               support::ThreadPool *Pool) {
  assert(ready() && "decideBatch() before a successful loadFile()+bind()");
  std::vector<Decision> Out(Inputs.size());
  unsigned Shards = Pool ? std::max(1u, Pool->numThreads()) : 1u;
  if (Shards <= 1 || Inputs.size() <= 1) {
    for (size_t I = 0; I != Inputs.size(); ++I)
      Out[I] = decideCompiled(Inputs[I], false, MainScratch);
  } else {
    // Shard by input id, not by batch position: every occurrence of one
    // input lands in the same shard, so its memo entry (and the order
    // duplicates are served in) is owned by exactly one worker -- the
    // lock-free invariant, and why decisions cannot depend on the shard
    // count.
    std::vector<CompiledModel::Scratch> Scratches;
    Scratches.reserve(Shards);
    for (unsigned S = 0; S != Shards; ++S)
      Scratches.push_back(Compiled.makeScratch());
    Pool->parallelFor(0, Shards, [&](size_t Shard) {
      CompiledModel::Scratch &S = Scratches[Shard];
      for (size_t I = 0; I != Inputs.size(); ++I)
        if (Inputs[I] % Shards == Shard)
          Out[I] = decideCompiled(Inputs[I], false, S);
    });
  }
  // Lifetime totals accumulate in batch order -- not shard completion
  // order -- so Stats are deterministic for every thread count.
  for (const Decision &D : Out)
    recordTotals(D);
  return Out;
}

PredictionService::Decision
PredictionService::decideInterpretedWith(const core::InputClassifier &Classifier,
                                         size_t Input) {
  assert(ready() && "decide() before a successful loadFile()+bind()");
  assert(Input < Memo.size() && "input out of range");

  unsigned NumFlat = Index->numFlat();
  InterpMemoEntry &E = InterpMemo[Input];
  if (E.Values.empty()) {
    E.Values.assign(NumFlat, 0.0);
    E.Have.assign(NumFlat, 0);
  }

  Decision D;
  core::FeatureProbe Probe(NumFlat, [this, &E, &D, Input](unsigned Flat) {
    if (E.Have[Flat])
      return std::make_pair(E.Values[Flat], 0.0);
    support::CostCounter C;
    double V = this->Program->extractFeature(
        Input, this->Index->propertyOf(Flat), this->Index->levelOf(Flat), C);
    E.Values[Flat] = V;
    E.Have[Flat] = 1;
    ++D.FeaturesExtracted;
    return std::make_pair(V, C.units());
  });

  unsigned Landmark = Classifier.classify(Probe);
  assert(Landmark < Model.System.L1.Landmarks.size() &&
         "classifier predicted a missing landmark");
  D.Landmark = Landmark;
  D.Config = &Model.System.L1.Landmarks[Landmark];
  D.FeatureCost = Probe.totalCost();
  D.Memoized = D.FeaturesExtracted == 0;
  recordTotals(D);
  return D;
}

PredictionService::Decision PredictionService::decideInterpreted(size_t Input) {
  return decideInterpretedWith(*Model.System.L2.Production, Input);
}

PredictionService::Decision
PredictionService::decideOneLevelInterpreted(size_t Input) {
  return decideInterpretedWith(*Model.System.OneLevel, Input);
}

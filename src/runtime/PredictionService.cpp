//===- runtime/PredictionService.cpp ----------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/PredictionService.h"

#include "core/FeatureProbe.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace pbt;
using namespace pbt::runtime;

PredictionService::PredictionService(serialize::TrainedModel ModelIn)
    : Model(std::move(ModelIn)) {
  Index.emplace(Model.Meta.Features);
  Compiled = CompiledModel::compile(Model);
  MainScratch = Compiled.makeScratch();
}

serialize::LoadStatus PredictionService::loadFile(const std::string &Path) {
  serialize::TrainedModel Loaded;
  CompiledModel LoadedCompiled;
  serialize::LoadStatus Status =
      serialize::loadCompiledModelFile(Path, Loaded, LoadedCompiled);
  if (!Status) {
    // The documented contract: a failed load empties the service rather
    // than silently serving the previously loaded model.
    *this = PredictionService();
    return Status;
  }
  Model = std::move(Loaded);
  Compiled = std::move(LoadedCompiled);
  MainScratch = Compiled.makeScratch();
  Index.emplace(Model.Meta.Features);
  Program = nullptr;
  Bound = false;
  Memo.clear();
  Totals = Stats();
  return serialize::LoadStatus::success();
}

serialize::LoadStatus PredictionService::bind(const TunableProgram &P) {
  // The documented contract: a failed bind leaves the service unbound --
  // it must not keep serving a previously bound program.
  Program = nullptr;
  Bound = false;
  Memo.clear();
  if (!Model.System.L2.Production)
    return serialize::LoadStatus::failure("no model loaded");
  serialize::LoadStatus Status = serialize::validateAgainst(Model, P);
  if (!Status)
    return Status;
  Program = &P;
  Bound = true;
  // One slot per program input: batch shards index this concurrently, so
  // it must never grow (or rehash) on the serving path.
  Memo.assign(P.numInputs(), MemoEntry());
  InterpMemo.clear();
  return serialize::LoadStatus::success();
}

void PredictionService::clearMemo() {
  Memo.assign(Memo.size(), MemoEntry());
  InterpMemo.clear();
}

void PredictionService::clearDecisions() {
  for (MemoEntry &E : Memo)
    E.Decided[0] = E.Decided[1] = -1;
}

void PredictionService::setSimdTier(support::SimdTier Tier) {
  Lanes = &laneEngine(
      support::clampSimdTier(Tier, support::detectSimdTier()));
}

void PredictionService::warmFeatureMemo(size_t Input) {
  assert(ready() && "warmFeatureMemo() before loadFile()+bind()");
  assert(Input < Memo.size() && "input out of range");
  const unsigned NumFlat = Index->numFlat();
  MemoEntry &E = Memo[Input];
  if (E.Have.empty()) {
    E.Values.assign(NumFlat, 0.0);
    E.Have.assign(NumFlat, 0);
  }
  for (unsigned F = 0; F != NumFlat; ++F)
    if (!E.Have[F]) {
      support::CostCounter C;
      E.Values[F] = Program->extractFeature(Input, Index->propertyOf(F),
                                            Index->levelOf(F), C);
      E.Have[F] = 1;
      ++E.HaveCount;
    }
}

void PredictionService::recordTotals(const Decision &D) {
  ++Totals.Calls;
  if (D.Memoized)
    ++Totals.MemoizedCalls;
  Totals.FeaturesExtracted += D.FeaturesExtracted;
  Totals.FeatureCostPaid += D.FeatureCost;
}

PredictionService::Decision
PredictionService::decideCompiled(size_t Input, bool OneLevelPath,
                                  CompiledModel::Scratch &S) {
  assert(ready() && "decide() before a successful loadFile()+bind()");
  assert(Input < Memo.size() && "input out of range");

  unsigned NumFlat = Index->numFlat();
  MemoEntry &E = Memo[Input];
  // Repeat decision: the choice was already derived from this input's
  // memoized features, and re-running the classifier over a memo is
  // deterministic -- serve the cached landmark with the exact Decision a
  // re-classification over memoized features would produce.
  int32_t Cached = E.Decided[OneLevelPath ? 1 : 0];
  if (Cached >= 0) {
    Decision D;
    D.Landmark = static_cast<unsigned>(Cached);
    D.Config = &Model.System.L1.Landmarks[D.Landmark];
    D.Memoized = true;
    return D;
  }
  if (E.Have.empty()) {
    E.Values.assign(NumFlat, 0.0);
    E.Have.assign(NumFlat, 0);
  }

  Decision D;
  // Memo-backed extractor, inlined into the compiled walk (no
  // std::function, no probe allocation). Costs accumulate in examination
  // order, exactly like the interpreted probe, so the per-call cost is
  // bit-identical across the two paths.
  auto Get = [&](unsigned Flat) -> double {
    if (E.Have[Flat])
      return E.Values[Flat];
    support::CostCounter C;
    double V = Program->extractFeature(Input, Index->propertyOf(Flat),
                                       Index->levelOf(Flat), C);
    E.Values[Flat] = V;
    E.Have[Flat] = 1;
    ++E.HaveCount;
    D.FeatureCost += C.units();
    ++D.FeaturesExtracted;
    return V;
  };

  unsigned Landmark = OneLevelPath ? Compiled.decideOneLevel(S, Get)
                                   : Compiled.decideProduction(S, Get);
  // Loaders bound every classifier's predictions by the landmark count,
  // so this holds for any model that passed validation.
  assert(Landmark < Model.System.L1.Landmarks.size() &&
         "classifier predicted a missing landmark");
  D.Landmark = Landmark;
  D.Config = &Model.System.L1.Landmarks[Landmark];
  D.Memoized = D.FeaturesExtracted == 0;
  E.Decided[OneLevelPath ? 1 : 0] = static_cast<int32_t>(Landmark);
  return D;
}

PredictionService::Decision PredictionService::decide(size_t Input) {
  Decision D = decideCompiled(Input, /*OneLevelPath=*/false, MainScratch);
  recordTotals(D);
  return D;
}

PredictionService::Decision PredictionService::decideOneLevel(size_t Input) {
  Decision D = decideCompiled(Input, /*OneLevelPath=*/true, MainScratch);
  recordTotals(D);
  return D;
}

void PredictionService::decideShard(const std::vector<size_t> &Inputs,
                                    std::vector<Decision> &Out,
                                    unsigned Shards, unsigned Shard,
                                    CompiledModel::Scratch &S) {
  const unsigned NumFlat = Index->numFlat();
  const unsigned W = Lanes->Width;
  // A OneLevel production classifier reads every flat feature in
  // [0, Dim) unconditionally, so even cold inputs are lane-eligible:
  // pre-extracting that range IS the scalar extraction sequence. Tree /
  // Bayes examine a value-dependent subset, so their cold inputs stay
  // on the scalar path (pre-extraction would change what gets charged).
  const bool ColdEligible =
      Compiled.productionKind() == ml::CompiledKind::OneLevel;
  const unsigned ProdDim = Compiled.productionDim();
  const std::vector<uint32_t> &Reads = Compiled.productionReads();

  struct PendingLane {
    size_t Input;
    size_t Pos;
  };
  PendingLane Lane[kMaxLaneWidth];
  unsigned Queued = 0;

  auto flushLane = [&] {
    if (Queued == 0)
      return;
    double *Block = S.LaneBlock.data();
    for (unsigned L = 0; L != Queued; ++L) {
      MemoEntry &E = Memo[Lane[L].Input];
      Decision &D = Out[Lane[L].Pos];
      D = Decision();
      if (E.Have.empty()) {
        E.Values.assign(NumFlat, 0.0);
        E.Have.assign(NumFlat, 0);
      }
      // Cold one-level elements extract their missing features here, in
      // flat order -- the same calls, order and costs as the scalar
      // path's memo-backed Get, charged to the same Decision.
      if (ColdEligible)
        for (unsigned F = 0; F != ProdDim; ++F)
          if (!E.Have[F]) {
            support::CostCounter C;
            double V = Program->extractFeature(Lane[L].Input,
                                               Index->propertyOf(F),
                                               Index->levelOf(F), C);
            E.Values[F] = V;
            E.Have[F] = 1;
            ++E.HaveCount;
            D.FeatureCost += C.units();
            ++D.FeaturesExtracted;
          }
      // Stage only the classifier's read set: features outside it are
      // never examined by any kernel, so for subset classifiers (trees,
      // best-subset Bayes) this is far fewer copies than NumFlat.
      for (uint32_t F : Reads)
        Block[static_cast<size_t>(F) * W + L] = E.Values[F];
    }
    unsigned Labels[kMaxLaneWidth];
    Compiled.classifyProductionBlock(*Lanes, S, Queued, Labels);
    for (unsigned L = 0; L != Queued; ++L) {
      assert(Labels[L] < Model.System.L1.Landmarks.size() &&
             "lane engine predicted a missing landmark");
      Decision &D = Out[Lane[L].Pos];
      D.Landmark = Labels[L];
      D.Config = &Model.System.L1.Landmarks[Labels[L]];
      D.Memoized = D.FeaturesExtracted == 0;
      Memo[Lane[L].Input].Decided[0] = static_cast<int32_t>(Labels[L]);
    }
    Queued = 0;
  };

  for (size_t I = 0; I != Inputs.size(); ++I) {
    size_t Input = Inputs[I];
    if (Input % Shards != Shard)
      continue;
    assert(Input < Memo.size() && "input out of range");
    MemoEntry &E = Memo[Input];
    if (E.Decided[0] < 0) {
      // A repeat of an input still waiting in the lane: classify the
      // lane now, then serve the repeat from the fresh decision cache
      // -- same served order as the scalar loop.
      bool Waiting = false;
      for (unsigned L = 0; L != Queued && !Waiting; ++L)
        Waiting = Lane[L].Input == Input;
      if (Waiting)
        flushLane();
    }
    if (E.Decided[0] >= 0) {
      Decision D;
      D.Landmark = static_cast<unsigned>(E.Decided[0]);
      D.Config = &Model.System.L1.Landmarks[D.Landmark];
      D.Memoized = true;
      Out[I] = D;
      continue;
    }
    const bool MemoComplete = E.HaveCount == NumFlat && NumFlat != 0;
    if (MemoComplete || ColdEligible) {
      Lane[Queued].Input = Input;
      Lane[Queued].Pos = I;
      if (++Queued == W)
        flushLane();
    } else {
      Out[I] = decideCompiled(Input, /*OneLevelPath=*/false, S);
    }
  }
  flushLane();
}

std::vector<PredictionService::Decision>
PredictionService::decideBatch(const std::vector<size_t> &Inputs,
                               support::ThreadPool *Pool) {
  assert(ready() && "decideBatch() before a successful loadFile()+bind()");
  std::vector<Decision> Out(Inputs.size());
  unsigned Shards = Pool ? std::max(1u, Pool->numThreads()) : 1u;
  // Lane grouping never changes a decision (each lane element replays
  // the scalar arithmetic independently), so lane serving composes with
  // any shard count; single-input batches skip straight to scalar.
  const bool UseLanes = LaneServing && Inputs.size() > 1;
  // The lane engine never oversubscribes the host: sharding across more
  // workers than hardware threads only adds wake/contend latency (they
  // cannot run concurrently anyway). Decisions are shard-count
  // invariant by design, so the clamp is unobservable except as
  // throughput. The scalar path keeps its historical sharding -- it is
  // the frozen baseline `pbt-bench serve` measures the engine against.
  if (UseLanes && Shards > 1) {
    // Queried once: hardware_concurrency is a sysconf call, far too
    // slow for a per-batch hot path.
    static const unsigned HW = std::thread::hardware_concurrency();
    if (HW != 0 && HW < Shards)
      Shards = HW;
  }
  if (Shards <= 1 || Inputs.size() <= 1) {
    if (UseLanes) {
      decideShard(Inputs, Out, /*Shards=*/1, /*Shard=*/0, MainScratch);
    } else {
      for (size_t I = 0; I != Inputs.size(); ++I)
        Out[I] = decideCompiled(Inputs[I], false, MainScratch);
    }
  } else {
    // Shard by input id, not by batch position: every occurrence of one
    // input lands in the same shard, so its memo entry (and the order
    // duplicates are served in) is owned by exactly one worker -- the
    // lock-free invariant, and why decisions cannot depend on the shard
    // count.
    std::vector<CompiledModel::Scratch> Scratches;
    Scratches.reserve(Shards);
    for (unsigned S = 0; S != Shards; ++S)
      Scratches.push_back(Compiled.makeScratch());
    Pool->parallelFor(0, Shards, [&](size_t Shard) {
      CompiledModel::Scratch &S = Scratches[Shard];
      if (UseLanes) {
        decideShard(Inputs, Out, Shards, static_cast<unsigned>(Shard), S);
        return;
      }
      for (size_t I = 0; I != Inputs.size(); ++I)
        if (Inputs[I] % Shards == Shard)
          Out[I] = decideCompiled(Inputs[I], false, S);
    });
  }
  // Lifetime totals accumulate in batch order -- not shard completion
  // order -- so Stats are deterministic for every thread count.
  for (const Decision &D : Out)
    recordTotals(D);
  return Out;
}

PredictionService::Decision
PredictionService::decideInterpretedWith(const core::InputClassifier &Classifier,
                                         size_t Input) {
  assert(ready() && "decide() before a successful loadFile()+bind()");
  assert(Input < Memo.size() && "input out of range");

  unsigned NumFlat = Index->numFlat();
  InterpMemoEntry &E = InterpMemo[Input];
  if (E.Values.empty()) {
    E.Values.assign(NumFlat, 0.0);
    E.Have.assign(NumFlat, 0);
  }

  Decision D;
  core::FeatureProbe Probe(NumFlat, [this, &E, &D, Input](unsigned Flat) {
    if (E.Have[Flat])
      return std::make_pair(E.Values[Flat], 0.0);
    support::CostCounter C;
    double V = this->Program->extractFeature(
        Input, this->Index->propertyOf(Flat), this->Index->levelOf(Flat), C);
    E.Values[Flat] = V;
    E.Have[Flat] = 1;
    ++D.FeaturesExtracted;
    return std::make_pair(V, C.units());
  });

  unsigned Landmark = Classifier.classify(Probe);
  assert(Landmark < Model.System.L1.Landmarks.size() &&
         "classifier predicted a missing landmark");
  D.Landmark = Landmark;
  D.Config = &Model.System.L1.Landmarks[Landmark];
  D.FeatureCost = Probe.totalCost();
  D.Memoized = D.FeaturesExtracted == 0;
  recordTotals(D);
  return D;
}

PredictionService::Decision PredictionService::decideInterpreted(size_t Input) {
  return decideInterpretedWith(*Model.System.L2.Production, Input);
}

PredictionService::Decision
PredictionService::decideOneLevelInterpreted(size_t Input) {
  return decideInterpretedWith(*Model.System.OneLevel, Input);
}

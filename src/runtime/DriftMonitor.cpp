//===- runtime/DriftMonitor.cpp ---------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/DriftMonitor.h"

#include "serialize/ModelIO.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::runtime;

double runtime::totalVariation(const std::vector<double> &P,
                               const std::vector<double> &Q) {
  assert(P.size() == Q.size() && "histogram arity mismatch");
  if (P.empty())
    return 0.0;
  double SumP = 0.0, SumQ = 0.0;
  for (double V : P)
    SumP += V;
  for (double V : Q)
    SumQ += V;
  double TV = 0.0;
  for (size_t I = 0; I != P.size(); ++I) {
    double A = SumP > 0.0 ? P[I] / SumP : 1.0 / static_cast<double>(P.size());
    double B = SumQ > 0.0 ? Q[I] / SumQ : 1.0 / static_cast<double>(Q.size());
    TV += std::abs(A - B);
  }
  return 0.5 * TV;
}

DriftMonitor::DriftMonitor(unsigned NumFeatures, unsigned NumClusters,
                           unsigned NumDecisions,
                           const DriftMonitorOptions &Options)
    : Opts(Options), NumFeatures(NumFeatures), NumClusters(NumClusters),
      NumDecisions(NumDecisions) {
  assert(NumFeatures > 0 && "a monitor needs at least one feature");
  Opts.Window = std::max<size_t>(Opts.Window, 4);
  Opts.MinSamples = std::max<size_t>(1, std::min(Opts.MinSamples, Opts.Window));
  if (Opts.CheckInterval == 0)
    Opts.CheckInterval = std::max<size_t>(1, Opts.Window / 4);
  RefMean.assign(NumFeatures, 0.0);
  RefVar.assign(NumFeatures, 0.0);
  RefClusterHist.assign(NumClusters, 0.0);
  RefDecisionHist.assign(NumDecisions, 0.0);
  FeatRing.assign(Opts.Window * NumFeatures, 0.0);
  ClusterRing.assign(Opts.Window, 0);
  DecisionRing.assign(Opts.Window, 0);
}

DriftMonitor DriftMonitor::referenceFrom(const serialize::TrainedModel &Model,
                                         const DriftMonitorOptions &Options) {
  const core::TrainedSystem &S = Model.System;
  unsigned NumFlat = static_cast<unsigned>(S.L1.Features.cols());
  unsigned NumClusters =
      static_cast<unsigned>(S.L1.Clusters.Centroids.rows());
  unsigned NumDecisions = static_cast<unsigned>(S.L1.Landmarks.size());
  DriftMonitor M(NumFlat, NumClusters, NumDecisions, Options);

  // Feature statistics over the rows the model actually trained on.
  const std::vector<size_t> &Rows = S.TrainRows;
  std::vector<double> Mean(NumFlat, 0.0), Var(NumFlat, 0.0);
  std::vector<double> Column;
  Column.reserve(Rows.size());
  for (unsigned F = 0; F != NumFlat; ++F) {
    Column.clear();
    for (size_t Row : Rows)
      Column.push_back(S.L1.Features.at(Row, F));
    Mean[F] = support::mean(Column);
    Var[F] = support::variance(Column);
  }

  std::vector<double> ClusterHist(NumClusters, 0.0);
  for (unsigned C : S.L1.Clusters.Assignment)
    if (C < NumClusters)
      ClusterHist[C] += 1.0;
  std::vector<double> DecisionHist(NumDecisions, 0.0);
  for (unsigned L : S.L2.TrainLabels)
    if (L < NumDecisions)
      DecisionHist[L] += 1.0;

  M.setReference(std::move(Mean), std::move(Var), std::move(ClusterHist),
                 std::move(DecisionHist));
  return M;
}

void DriftMonitor::setReference(std::vector<double> FeatureMean,
                                std::vector<double> FeatureVar,
                                std::vector<double> ClusterHist,
                                std::vector<double> DecisionHist) {
  assert(FeatureMean.size() == NumFeatures && FeatureVar.size() == NumFeatures &&
         ClusterHist.size() == NumClusters &&
         DecisionHist.size() == NumDecisions && "reference arity mismatch");
  RefMean = std::move(FeatureMean);
  RefVar = std::move(FeatureVar);
  RefClusterHist = std::move(ClusterHist);
  RefDecisionHist = std::move(DecisionHist);
}

bool DriftMonitor::observe(const double *Features, unsigned Cluster,
                           unsigned Decision) {
  assert(ready() && "observe() on a default-constructed monitor");
  assert(Cluster < NumClusters && Decision < NumDecisions &&
         "observation out of range");
  std::copy(Features, Features + NumFeatures,
            FeatRing.begin() + static_cast<long>(Next * NumFeatures));
  ClusterRing[Next] = Cluster;
  DecisionRing[Next] = Decision;
  Next = (Next + 1) % Opts.Window;
  Fill = std::min(Fill + 1, Opts.Window);
  ++Observations;

  if (Observations < CooldownUntil || Fill < Opts.MinSamples ||
      Observations % Opts.CheckInterval != 0)
    return false;
  Last = check();
  return Last.Drifted;
}

void DriftMonitor::liveStats(std::vector<double> &Mean,
                             std::vector<double> &Var,
                             std::vector<double> &ClusterHist,
                             std::vector<double> &DecisionHist) const {
  Mean.assign(NumFeatures, 0.0);
  Var.assign(NumFeatures, 0.0);
  ClusterHist.assign(NumClusters, 0.0);
  DecisionHist.assign(NumDecisions, 0.0);
  std::vector<double> Column(Fill, 0.0);
  for (unsigned F = 0; F != NumFeatures; ++F) {
    for (size_t I = 0; I != Fill; ++I)
      Column[I] = FeatRing[I * NumFeatures + F];
    Mean[F] = support::mean(Column);
    Var[F] = support::variance(Column);
  }
  for (size_t I = 0; I != Fill; ++I) {
    ClusterHist[ClusterRing[I]] += 1.0;
    DecisionHist[DecisionRing[I]] += 1.0;
  }
}

DriftSignal DriftMonitor::check() const {
  DriftSignal Signal;
  Signal.AtObservation = Observations;
  if (Fill < Opts.MinSamples)
    return Signal;

  std::vector<double> Mean, Var, ClusterHist, DecisionHist;
  liveStats(Mean, Var, ClusterHist, DecisionHist);

  for (unsigned F = 0; F != NumFeatures; ++F) {
    // Standardize by the reference spread; the additive floor keeps a
    // (near-)constant reference feature from turning FP noise into an
    // unbounded score while still flagging a genuine move.
    double Denom =
        std::sqrt(std::max(RefVar[F], 0.0)) + 1e-9 + 1e-6 * std::abs(RefMean[F]);
    double Shift = std::abs(Mean[F] - RefMean[F]) / Denom;
    if (Shift > Signal.MeanShift) {
      Signal.MeanShift = Shift;
      Signal.MeanShiftFeature = F;
    }
  }
  Signal.ClusterTV = totalVariation(ClusterHist, RefClusterHist);
  Signal.DecisionTV = totalVariation(DecisionHist, RefDecisionHist);
  Signal.Drifted = Signal.MeanShift > Opts.MeanShiftThreshold ||
                   Signal.ClusterTV > Opts.ClusterTVThreshold ||
                   Signal.DecisionTV > Opts.DecisionTVThreshold;
  return Signal;
}

void DriftMonitor::rebaseToModel(const serialize::TrainedModel &Model) {
  DriftMonitor Fresh = referenceFrom(Model, Opts);
  assert(Fresh.NumFeatures == NumFeatures && "model feature arity changed");
  NumClusters = Fresh.NumClusters;
  NumDecisions = Fresh.NumDecisions;
  RefMean = std::move(Fresh.RefMean);
  RefVar = std::move(Fresh.RefVar);
  RefClusterHist = std::move(Fresh.RefClusterHist);
  RefDecisionHist = std::move(Fresh.RefDecisionHist);
  ClusterRing.assign(Opts.Window, 0);
  DecisionRing.assign(Opts.Window, 0);
  Fill = 0;
  Next = 0;
  CooldownUntil = Observations + Opts.Cooldown;
}

void DriftMonitor::rebaseToWindow() {
  if (Fill > 0) {
    std::vector<double> Mean, Var, ClusterHist, DecisionHist;
    liveStats(Mean, Var, ClusterHist, DecisionHist);
    setReference(std::move(Mean), std::move(Var), std::move(ClusterHist),
                 std::move(DecisionHist));
  }
  Fill = 0;
  Next = 0;
  CooldownUntil = Observations + Opts.Cooldown;
}

//===- runtime/CompiledModel.cpp --------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledModel.h"

#include "core/Classifiers.h"
#include "serialize/ModelIO.h"

#include <algorithm>

using namespace pbt;
using namespace pbt::runtime;

CompiledModel CompiledModel::compileClassifiers(
    const core::InputClassifier &Production,
    const core::InputClassifier *OneLevel, unsigned NumFlat,
    unsigned NumLandmarks) {
  CompiledModel M;
  M.NumFlat = NumFlat;
  M.NumLandmarks = NumLandmarks;
  Production.compileInto(M.Arena, M.Production);
  if (OneLevel) {
    OneLevel->compileInto(M.Arena, M.Baseline);
    M.HasOneLevel = true;
  }
  M.Ready = true;
  return M;
}

CompiledModel CompiledModel::compile(const serialize::TrainedModel &Model) {
  const core::TrainedSystem &S = Model.System;
  if (!S.L2.Production || S.L1.Landmarks.empty())
    return CompiledModel();
  CompiledModel M = compileClassifiers(
      *S.L2.Production, S.OneLevel.get(), Model.Meta.numFlatFeatures(),
      static_cast<unsigned>(S.L1.Landmarks.size()));
  // Inline the landmark configurations: a flat values-by-arity table so
  // decision -> configuration is one multiply-add away.
  M.Arity = static_cast<unsigned>(S.L1.Landmarks.front().size());
  M.LandmarkBase = static_cast<uint32_t>(M.Arena.F64.size());
  for (const Configuration &C : S.L1.Landmarks) {
    assert(C.size() == M.Arity && "landmark arity mismatch");
    M.Arena.appendF64(C.values().data(), C.values().size());
  }
  return M;
}

CompiledModel::Scratch CompiledModel::makeScratch() const {
  Scratch S;
  unsigned Classes = std::max(
      {NumLandmarks, Production.Classes, Baseline.Classes, 1u});
  unsigned Dim = std::max({NumFlat, Production.Dim, Baseline.Dim, 1u});
  S.LogPost.assign(Classes, 0.0);
  S.Row.assign(Dim, 0.0);
  return S;
}

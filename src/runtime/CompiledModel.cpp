//===- runtime/CompiledModel.cpp --------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledModel.h"

#include "core/Classifiers.h"
#include "serialize/ModelIO.h"

#include <algorithm>

using namespace pbt;
using namespace pbt::runtime;

/// The flat features \p C can ever examine, sorted and deduplicated
/// (see CompiledModel::productionReads).
static std::vector<uint32_t> readSetOf(const ml::CompiledClassifier &C,
                                       const ml::CompiledArena &Arena) {
  std::vector<uint32_t> Reads;
  switch (C.Kind) {
  case ml::CompiledKind::Constant:
  case ml::CompiledKind::MaxApriori:
    break;
  case ml::CompiledKind::Tree: {
    const int32_t *Feature = Arena.I32.data() + C.TreeFeature;
    for (uint32_t N = 0; N != C.NumNodes; ++N)
      if (Feature[N] >= 0)
        Reads.push_back(static_cast<uint32_t>(Feature[N]));
    break;
  }
  case ml::CompiledKind::Bayes: {
    const int32_t *Order = Arena.I32.data() + C.OrderBase;
    for (uint32_t P = 0; P != C.OrderLen; ++P)
      Reads.push_back(static_cast<uint32_t>(Order[P]));
    break;
  }
  case ml::CompiledKind::OneLevel:
    for (uint32_t F = 0; F != C.Dim; ++F)
      Reads.push_back(F);
    break;
  }
  std::sort(Reads.begin(), Reads.end());
  Reads.erase(std::unique(Reads.begin(), Reads.end()), Reads.end());
  return Reads;
}

CompiledModel CompiledModel::compileClassifiers(
    const core::InputClassifier &Production,
    const core::InputClassifier *OneLevel, unsigned NumFlat,
    unsigned NumLandmarks) {
  CompiledModel M;
  M.NumFlat = NumFlat;
  M.NumLandmarks = NumLandmarks;
  Production.compileInto(M.Arena, M.Production);
  if (OneLevel) {
    OneLevel->compileInto(M.Arena, M.Baseline);
    M.HasOneLevel = true;
  }
  M.ProductionReads = readSetOf(M.Production, M.Arena);
  M.Ready = true;
  return M;
}

CompiledModel CompiledModel::compile(const serialize::TrainedModel &Model) {
  const core::TrainedSystem &S = Model.System;
  if (!S.L2.Production || S.L1.Landmarks.empty())
    return CompiledModel();
  CompiledModel M = compileClassifiers(
      *S.L2.Production, S.OneLevel.get(), Model.Meta.numFlatFeatures(),
      static_cast<unsigned>(S.L1.Landmarks.size()));
  // Inline the landmark configurations: a flat values-by-arity table so
  // decision -> configuration is one multiply-add away.
  M.Arity = static_cast<unsigned>(S.L1.Landmarks.front().size());
  M.LandmarkBase = static_cast<uint32_t>(M.Arena.F64.size());
  for (const Configuration &C : S.L1.Landmarks) {
    assert(C.size() == M.Arity && "landmark arity mismatch");
    M.Arena.appendF64(C.values().data(), C.values().size());
  }
  // Precompute each landmark's active-parameter bitmask from the
  // recorded conditional space: one chain walk per landmark at compile
  // time, a single load per decision afterwards.
  const ConfigSpace &Space = Model.Meta.Space;
  if (Space.size() == M.Arity && M.Arity != 0) {
    M.LandmarkMasks.reserve(S.L1.Landmarks.size());
    for (const Configuration &C : S.L1.Landmarks)
      M.LandmarkMasks.push_back(Space.activeMask(C));
  }
  return M;
}

CompiledModel::Scratch CompiledModel::makeScratch() const {
  Scratch S;
  unsigned Classes = std::max(
      {NumLandmarks, Production.Classes, Baseline.Classes, 1u});
  unsigned Dim = std::max({NumFlat, Production.Dim, Baseline.Dim, 1u});
  S.LogPost.assign(Classes, 0.0);
  S.Row.assign(Dim, 0.0);
  // Lane-major SIMD working memory, sized for the widest engine so one
  // Scratch serves every dispatch tier. Sections are multiples of a
  // cache line (8 doubles / 16 int32s), keeping every laneView pointer
  // 64-byte aligned.
  S.LaneClasses = Classes;
  S.LaneDim = Dim;
  S.LaneBlock.assign(static_cast<size_t>(Dim) * kMaxLaneWidth, 0.0);
  S.LaneF64.assign(
      (static_cast<size_t>(Classes) + Dim + 3) * kMaxLaneWidth, 0.0);
  S.LaneI32.assign(5 * 2 * static_cast<size_t>(kMaxLaneWidth), 0);
  return S;
}

//===- runtime/SimdLanes.h - Lane-batched compiled classification ---------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vectorized half of the compiled serving path: a LaneEngine
/// classifies a *lane* of 4-8 inputs at a time over the pointer-free
/// CompiledModel arena. Inputs sit lane-major in a feature block
/// (Block[Flat * Width + lane]), and the kernels vectorize ACROSS the
/// lane -- decision trees walk level-synchronously (gather each lane's
/// node, compare, blend children, retired lanes self-loop on their
/// leaf), the flattened-Bayes log-posterior accumulates per class for
/// all lanes with per-lane early-exit retirement, and the one-level
/// baseline fuses normalizer scale/offset and centroid distances across
/// the lane.
///
/// Exactness is the design invariant, not an aspiration: every lane
/// element replays the scalar CompiledModel::classify arithmetic in the
/// same operation order (vectorizing across independent inputs never
/// reassociates any one input's arithmetic), and transcendentals
/// (std::exp in the Bayes early-exit) stay scalar per element. A lane
/// decision is therefore bit-identical to the scalar compiled decision,
/// which is in turn bit-identical to the interpreted classifier -- the
/// parity fuzzer pins all tiers against that oracle.
///
/// Three engines exist, one per TU compiled with that ISA's flags
/// (scalar baseline / SSE4.2 / AVX2); laneEngine() dispatches on the
/// support::SimdTier detected at load (overridable via PBT_SIMD).
/// Engines above the host's detected tier exist but must not be
/// executed; availableLaneEngines() lists the safe ones.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_SIMDLANES_H
#define PBT_RUNTIME_SIMDLANES_H

#include "ml/CompiledArena.h"
#include "support/SimdDispatch.h"

#include <cstdint>
#include <vector>

namespace pbt {
namespace runtime {

/// The widest lane any engine uses; scratch is sized for this so one
/// Scratch serves every tier.
constexpr unsigned kMaxLaneWidth = 8;

/// Raw pointer view of one lowered classifier inside its arena -- what
/// the per-ISA kernel TUs consume (they must not depend on
/// runtime/CompiledModel.h, which sits above them).
struct LaneModelView {
  const double *F64 = nullptr;
  const int32_t *I32 = nullptr;
  const ml::CompiledClassifier *C = nullptr;
};

/// Lane-major working memory carved out of CompiledModel::Scratch. All
/// pointers are 64-byte aligned; per-lane arrays hold kMaxLaneWidth
/// entries, blocks are indexed [row * Width + lane] with the engine's
/// own Width.
struct LaneScratchView {
  double *LogPost = nullptr; ///< Classes * Width accumulator block
  double *Row = nullptr;     ///< Dim * Width normalized-row block
  double *V = nullptr;       ///< lane: staged feature values
  double *T = nullptr;       ///< lane: staged thresholds
  double *MaxLog = nullptr;  ///< lane: running Bayes maxima
  int32_t *Node = nullptr;   ///< lane: tree cursor / centroid best
  int32_t *Lo = nullptr;     ///< lane: staged left children
  int32_t *Hi = nullptr;     ///< lane: staged right children
  int32_t *Best = nullptr;   ///< lane: Bayes best class
  int32_t *State = nullptr;  ///< lane: 1 = still classifying
};

/// One runtime-dispatched engine: an ISA tier, its lane width, and the
/// block-classification kernel.
struct LaneEngine {
  support::SimdTier Tier = support::SimdTier::Scalar;
  unsigned Width = 0;
  /// Classifies \p Count (<= Width) inputs whose flat features sit
  /// lane-major in \p Block (Block[F * Width + lane]), writing each
  /// lane's chosen label to Out[lane]. Idle lanes (>= Count) are
  /// computed and discarded; Block rows must span every flat feature
  /// the classifier can touch.
  void (*ClassifyBlock)(const LaneModelView &M, const double *Block,
                        unsigned Count, unsigned *Out,
                        const LaneScratchView &S) = nullptr;
};

/// The engine lowered for \p Tier. Always returns a valid engine; the
/// caller is responsible for not executing a tier above
/// support::detectSimdTier() (use availableLaneEngines()).
const LaneEngine &laneEngine(support::SimdTier Tier);

/// Engines safe to execute on this host, Scalar first.
std::vector<const LaneEngine *> availableLaneEngines();

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_SIMDLANES_H

//===- runtime/PredictionService.h - Online per-input selection -----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online half of the offline-train / online-predict split: a
/// PredictionService loads a persisted TrainedModel (serialize/ModelIO.h)
/// and answers "which configuration should this input run under?" without
/// retraining anything.
///
/// Serving is cheap by construction: the production classifier extracts
/// only the features it examines, extracted feature values are memoized
/// per input so repeated decisions for the same input pay the extraction
/// cost exactly once, and every call reports its own cost (alongside
/// service-lifetime totals) so a deployment can account for the overhead
/// the paper's Figure 6 includes.
///
/// Not thread-safe: wrap decide() in external synchronisation or give
/// each worker its own service (models are cheap to load).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_PREDICTIONSERVICE_H
#define PBT_RUNTIME_PREDICTIONSERVICE_H

#include "serialize/ModelIO.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pbt {
namespace runtime {

class PredictionService {
public:
  /// One answered query.
  struct Decision {
    /// Chosen landmark index into the model's configurations.
    unsigned Landmark = 0;
    /// The configuration to run the input under. Points into the
    /// service's loaded model: valid until the next loadFile() replaces
    /// it (copy the Configuration when holding decisions across swaps).
    const Configuration *Config = nullptr;
    /// Extraction cost paid by THIS call (0 when every examined feature
    /// was already memoized).
    double FeatureCost = 0.0;
    /// Features newly extracted by this call.
    unsigned FeaturesExtracted = 0;
    /// True when the call paid no extraction at all.
    bool Memoized = false;
  };

  /// Service-lifetime accounting.
  struct Stats {
    uint64_t Calls = 0;
    /// Calls that paid no extraction cost (memoized or feature-free).
    uint64_t MemoizedCalls = 0;
    uint64_t FeaturesExtracted = 0;
    double FeatureCostPaid = 0.0;
  };

  PredictionService() = default;
  explicit PredictionService(serialize::TrainedModel Model);

  /// Loads a model file. On failure returns the loader's error and leaves
  /// the service empty.
  serialize::LoadStatus loadFile(const std::string &Path);

  /// Binds the program inputs are drawn from. Fails (and leaves the
  /// service unbound) unless the program matches the model's feature
  /// declarations and configuration arity.
  serialize::LoadStatus bind(const TunableProgram &Program);

  bool ready() const { return Bound && !Model.System.L1.Landmarks.empty(); }

  /// Answers "which configuration for input \p Input" through the
  /// persisted production classifier, memoizing extracted features.
  /// \p Input must be below the bound program's input count.
  Decision decide(size_t Input);

  /// The decision the persisted one-level baseline would make; exposed so
  /// harnesses can compare methods online. Shares the feature memo.
  Decision decideOneLevel(size_t Input);

  /// Drops all memoized features (e.g. when the bound program's inputs
  /// were regenerated).
  void clearMemo();

  const serialize::TrainedModel &model() const { return Model; }
  const Stats &stats() const { return Totals; }

private:
  Decision decideWith(const core::InputClassifier &Classifier, size_t Input);

  serialize::TrainedModel Model;
  const TunableProgram *Program = nullptr;
  bool Bound = false;
  /// Flat-index decoder over Model.Meta.Features, built once per model so
  /// the per-decision hot path does no allocation-heavy rebuilding.
  std::optional<FeatureIndex> Index;
  /// Flat-feature memo per input: value + extracted flag.
  struct MemoEntry {
    std::vector<double> Values;
    std::vector<char> Have;
  };
  std::unordered_map<size_t, MemoEntry> Memo;
  Stats Totals;
};

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_PREDICTIONSERVICE_H

//===- runtime/PredictionService.h - Online per-input selection -----------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online half of the offline-train / online-predict split: a
/// PredictionService loads a persisted TrainedModel (serialize/ModelIO.h)
/// and answers "which configuration should this input run under?" without
/// retraining anything.
///
/// Serving is cheap by construction: straight after load the model is
/// lowered into a CompiledModel (one contiguous pointer-free arena; see
/// runtime/CompiledModel.h), so decide() is array walks with zero virtual
/// dispatch and zero per-call allocation. The production classifier
/// extracts only the features it examines, extracted feature values are
/// memoized per input so repeated decisions for the same input pay the
/// extraction cost exactly once, and every call reports its own cost
/// (alongside service-lifetime totals) so a deployment can account for
/// the overhead the paper's Figure 6 includes.
///
/// decideBatch() serves many inputs per call, sharding them across a
/// support::ThreadPool by input id: each memo entry is only ever touched
/// by the shard that owns its input, so the feature-memo hot path needs
/// no lock, and the decisions (landmarks *and* per-call costs) are
/// bit-identical for every thread count -- including Pool == nullptr.
///
/// The interpreted (polymorphic InputClassifier) path stays available
/// through decideInterpreted() for parity checks and as the baseline the
/// `pbt-bench serve` report measures the compiled path against.
///
/// Single-input calls are not thread-safe; decideBatch is the one entry
/// point that may use worker threads internally.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_PREDICTIONSERVICE_H
#define PBT_RUNTIME_PREDICTIONSERVICE_H

#include "runtime/CompiledModel.h"
#include "serialize/ModelIO.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pbt {
namespace runtime {

class PredictionService {
public:
  /// One answered query.
  struct Decision {
    /// Chosen landmark index into the model's configurations.
    unsigned Landmark = 0;
    /// The configuration to run the input under. Points into the
    /// service's loaded model: valid until the next loadFile() replaces
    /// it (copy the Configuration when holding decisions across swaps).
    const Configuration *Config = nullptr;
    /// Extraction cost paid by THIS call (0 when every examined feature
    /// was already memoized).
    double FeatureCost = 0.0;
    /// Features newly extracted by this call.
    unsigned FeaturesExtracted = 0;
    /// True when the call paid no extraction at all.
    bool Memoized = false;
  };

  /// Service-lifetime accounting.
  struct Stats {
    uint64_t Calls = 0;
    /// Calls that paid no extraction cost (memoized or feature-free).
    uint64_t MemoizedCalls = 0;
    uint64_t FeaturesExtracted = 0;
    double FeatureCostPaid = 0.0;
  };

  PredictionService() = default;
  explicit PredictionService(serialize::TrainedModel Model);

  /// Loads a model file and compiles it for serving. On failure returns
  /// the loader's error and leaves the service empty.
  serialize::LoadStatus loadFile(const std::string &Path);

  /// Binds the program inputs are drawn from. Fails (and leaves the
  /// service unbound) unless the program matches the model's feature
  /// declarations and configuration arity.
  serialize::LoadStatus bind(const TunableProgram &Program);

  bool ready() const {
    return Bound && Compiled.ready() && !Model.System.L1.Landmarks.empty();
  }

  /// Answers "which configuration for input \p Input" through the
  /// compiled production classifier, memoizing extracted features.
  /// \p Input must be below the bound program's input count.
  Decision decide(size_t Input);

  /// The decision the persisted one-level baseline would make (compiled);
  /// exposed so harnesses can compare methods online. Shares the memo.
  Decision decideOneLevel(size_t Input);

  /// Batched serving: Out[i] answers Inputs[i]. With a pool, inputs are
  /// sharded by input id across its workers (lock-free memo, see file
  /// comment); without one (or with a 1-thread pool) the loop runs
  /// inline. Decisions are identical for every thread count.
  ///
  /// When lane serving is enabled (the default), each shard gathers
  /// lane-eligible inputs -- memo-complete ones, plus every input when
  /// the production classifier is the all-features one-level kind --
  /// into SIMD lanes of laneWidth() inputs and classifies them through
  /// the dispatched LaneEngine. Lane decisions are bit-identical (in
  /// landmark AND per-call cost) to the scalar compiled path: the
  /// engines replay the scalar arithmetic per lane element, and cold
  /// lane elements extract exactly the features the scalar path would,
  /// in the same order.
  std::vector<Decision> decideBatch(const std::vector<size_t> &Inputs,
                                    support::ThreadPool *Pool = nullptr);

  /// Selects the SIMD dispatch tier used by lane serving. Requests
  /// above the host's detected tier clamp down (never dispatch an ISA
  /// the host lacks). Fresh services start at support::activeSimdTier()
  /// -- detection filtered through the PBT_SIMD override.
  void setSimdTier(support::SimdTier Tier);
  support::SimdTier simdTier() const { return Lanes->Tier; }
  unsigned laneWidth() const { return Lanes->Width; }

  /// Turns lane-batched serving off/on; when off, decideBatch runs the
  /// scalar compiled path for every input. That scalar path is the
  /// frozen oracle the SIMD parity wall compares against.
  void setLaneServing(bool Enabled) { LaneServing = Enabled; }
  bool laneServing() const { return LaneServing; }

  /// The pre-compile reference path, frozen as PR 2 shipped it: the
  /// polymorphic classifier chain, a std::function-backed FeatureProbe,
  /// and its own hash-map feature memo. Kept byte-for-byte so parity
  /// tests compare against -- and `pbt-bench serve` measures against --
  /// the implementation the compiled path replaced, not a half-upgraded
  /// hybrid.
  Decision decideInterpreted(size_t Input);
  Decision decideOneLevelInterpreted(size_t Input);

  /// Drops all memoized features (e.g. when the bound program's inputs
  /// were regenerated).
  void clearMemo();

  /// Drops only the cached decisions, keeping memoized feature values:
  /// the next decideBatch re-classifies every input (through whichever
  /// path is enabled) without re-paying extraction. What the parity
  /// fuzzer and `pbt-bench serve` use to re-run classification proper.
  void clearDecisions();

  /// Extracts and memoizes every still-missing flat feature of
  /// \p Input, deciding nothing and touching no lifetime stats: a
  /// serving-side warm-up so steady-state harnesses can measure
  /// classification with a feature-complete memo (where every model
  /// kind is lane-eligible).
  void warmFeatureMemo(size_t Input);

  const serialize::TrainedModel &model() const { return Model; }
  const CompiledModel &compiled() const { return Compiled; }
  const Stats &stats() const { return Totals; }

private:
  /// Flat-feature memo per input: value + extracted flag, plus the
  /// decisions already derived from those features. A landmark choice is
  /// a pure function of the input (via its memoized features), so once a
  /// path has decided an input, the repeat decision is one cached load --
  /// with the exact observable behaviour of re-classifying over memoized
  /// features (zero cost, zero extractions, Memoized = true). Entries
  /// are lazily sized on first touch; the vector itself is sized to the
  /// bound program's input count so concurrent shards never rehash.
  struct MemoEntry {
    std::vector<double> Values;
    std::vector<char> Have;
    /// How many flat features are memoized; == numFlat() means the
    /// entry is feature-complete (the O(1) lane-eligibility check).
    unsigned HaveCount = 0;
    /// Cached landmark per compiled path (-1 = not yet decided);
    /// [0] = production, [1] = one-level baseline.
    int32_t Decided[2] = {-1, -1};
  };
  /// Interpreted-path feature memo (the PR 2 structure, see
  /// decideInterpreted above).
  struct InterpMemoEntry {
    std::vector<double> Values;
    std::vector<char> Have;
  };

  Decision decideCompiled(size_t Input, bool OneLevelPath,
                          CompiledModel::Scratch &S);
  /// Lane-batched serving of one shard of a batch: walks the positions
  /// whose input id lands in \p Shard (of \p Shards) in batch order,
  /// queueing lane-eligible inputs into SIMD lanes and falling back to
  /// the scalar compiled path for the rest.
  void decideShard(const std::vector<size_t> &Inputs,
                   std::vector<Decision> &Out, unsigned Shards,
                   unsigned Shard, CompiledModel::Scratch &S);
  Decision decideInterpretedWith(const core::InputClassifier &Classifier,
                                 size_t Input);
  void recordTotals(const Decision &D);

  serialize::TrainedModel Model;
  CompiledModel Compiled;
  const TunableProgram *Program = nullptr;
  bool Bound = false;
  /// Flat-index decoder over Model.Meta.Features, built once per model so
  /// the per-decision hot path does no allocation-heavy rebuilding.
  std::optional<FeatureIndex> Index;
  std::vector<MemoEntry> Memo;
  std::unordered_map<size_t, InterpMemoEntry> InterpMemo;
  /// Working memory for single-input calls (batch shards make their own).
  CompiledModel::Scratch MainScratch;
  /// The runtime-dispatched SIMD engine lane serving classifies with;
  /// always a host-executable tier (setSimdTier clamps).
  const LaneEngine *Lanes = &laneEngine(support::activeSimdTier());
  bool LaneServing = true;
  Stats Totals;
};

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_PREDICTIONSERVICE_H

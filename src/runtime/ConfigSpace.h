//===- runtime/ConfigSpace.h - Tunable parameter spaces -------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The algorithmic configuration space of a PetaBricks-style program.
///
/// PetaBricks programs expose *algorithmic choice* (either...or blocks,
/// realised as selectors over recursive calls) together with ordinary
/// tunables (cutoffs, iteration counts, sampling levels). A ConfigSpace
/// declares every such parameter; a Configuration is one point in the
/// space. The evolutionary autotuner manipulates Configurations through
/// the mutation/crossover entry points defined here, and the two-level
/// learning framework treats them as opaque "landmarks".
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_CONFIGSPACE_H
#define PBT_RUNTIME_CONFIGSPACE_H

#include "support/Random.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace pbt {
namespace runtime {

/// Discriminates the three parameter families the autotuner understands.
enum class ParamKind {
  /// Unordered finite choice, e.g. which algorithm an either...or picks.
  Categorical,
  /// Ordered integer range, e.g. a recursion cutoff. May be log-scaled.
  Integer,
  /// Continuous range, e.g. an SOR relaxation factor or a sampling level.
  Real,
};

/// Declaration of a single tunable parameter.
struct ParamSpec {
  std::string Name;
  ParamKind Kind = ParamKind::Real;
  /// Inclusive bounds. For Categorical: [0, Cardinality-1].
  double Min = 0.0;
  double Max = 1.0;
  /// Number of categories (Categorical only).
  unsigned Cardinality = 0;
  /// Mutate/sample in log space (Integer/Real with positive bounds). The
  /// classic PetaBricks cutoff tunables are log-scaled because plausible
  /// cutoffs span orders of magnitude.
  bool LogScale = false;
  /// Conditional (hierarchical) parameters: index of the categorical
  /// parameter this one depends on, or -1 for an unconditional tunable.
  /// A conditional parameter only *exists* when its parent takes one of
  /// the activating categories -- e.g. an iterative-solver tolerance only
  /// under the solver choice's iterative branch.
  int Parent = -1;
  /// Bitmask over the parent's categories: bit c set means this parameter
  /// is active when the parent holds category c (and is itself active).
  uint64_t ParentMask = 0;
};

class Configuration;

/// An ordered collection of ParamSpecs defining a search space.
class ConfigSpace {
public:
  /// Declare a categorical parameter with \p Cardinality choices.
  /// \returns the parameter index.
  unsigned addCategorical(std::string Name, unsigned Cardinality);

  /// Declare an integer parameter in the inclusive range [Min, Max].
  unsigned addInteger(std::string Name, int64_t Min, int64_t Max,
                      bool LogScale = false);

  /// Declare a real parameter in [Min, Max].
  unsigned addReal(std::string Name, double Min, double Max,
                   bool LogScale = false);

  size_t size() const { return Params.size(); }
  bool empty() const { return Params.empty(); }

  const ParamSpec &param(unsigned Index) const {
    assert(Index < Params.size() && "parameter index out of range");
    return Params[Index];
  }

  /// Index of the parameter named \p Name, or -1 if absent.
  int indexOf(const std::string &Name) const;

  /// Makes parameter \p Index conditional on the earlier categorical
  /// parameter \p Parent: it is active only when the parent holds one of
  /// \p ActivatingValues. Parents must precede children (no cycles), may
  /// themselves be conditional (chains nest), and need Cardinality <= 64
  /// so the activation set fits a bitmask.
  void makeConditional(unsigned Index, unsigned Parent,
                       const std::vector<unsigned> &ActivatingValues);

  /// True when parameter \p Index was declared conditional.
  bool conditional(unsigned Index) const { return param(Index).Parent >= 0; }

  /// True when \p Index exists under \p Config: unconditional, or the
  /// whole parent chain holds activating categories.
  bool active(const Configuration &Config, unsigned Index) const;

  /// Bitmask of active parameters under \p Config (bit I = param I).
  /// Spaces are capped at 64 parameters.
  uint64_t activeMask(const Configuration &Config) const;

  /// The pinned value an *inactive* parameter holds: its defaultConfig
  /// value. Canonical configs keep dead branches at this value so two
  /// configs that differ only in nonexistent tunables compare equal,
  /// serialize identically, and hit the autotuner's outcome memo.
  double canonicalValue(unsigned Index) const;

  /// Pins every inactive parameter of \p Config to its canonicalValue.
  /// Idempotent; parents are processed before children, so one forward
  /// pass settles nested chains.
  void canonicalize(Configuration &Config) const;

  /// Uniformly random configuration (log-scaled params sample uniformly in
  /// log space). The result is canonical: dead-branch parameters are
  /// pinned.
  Configuration randomConfig(support::Rng &Rng) const;

  /// A deterministic mid-range configuration, useful as a search seed.
  /// Always canonical (inactive parameters already hold their pin value).
  Configuration defaultConfig() const;

  /// Mutates \p Config in place. Each *active* parameter independently
  /// mutates with probability \p Rate; categorical params resample,
  /// numeric params take a (log-space, where marked) Gaussian step scaled
  /// by \p Strength of the range, occasionally resetting to a fresh
  /// uniform sample. Parameters a parent flip newly activates are
  /// resampled uniformly (their pinned value carries no search history);
  /// the result is canonical.
  void mutate(Configuration &Config, support::Rng &Rng, double Rate,
              double Strength) const;

  /// Uniform crossover of two parents; the child is canonicalized.
  Configuration crossover(const Configuration &A, const Configuration &B,
                          support::Rng &Rng) const;

  /// Clamp every value into its declared range, rounding integers and
  /// categoricals, then canonicalize. Mutation keeps configs valid; this
  /// is a safety net for externally constructed configurations.
  void repair(Configuration &Config) const;

  /// log10 of the number of distinct configurations, counting real
  /// parameters at \p RealResolution distinguishable values. Reported by
  /// benchmarks to document search-space sizes as the paper does. For
  /// conditional spaces this is the unconstrained product -- an upper
  /// bound on the canonical-config count.
  double searchSpaceLog10(double RealResolution = 1e4) const;

private:
  std::vector<ParamSpec> Params;
};

/// One point in a ConfigSpace. Values are stored as doubles; integer and
/// categorical parameters hold exact integral values.
class Configuration {
public:
  Configuration() = default;
  explicit Configuration(std::vector<double> Values)
      : Values(std::move(Values)) {}

  size_t size() const { return Values.size(); }
  bool empty() const { return Values.empty(); }

  double real(unsigned Index) const {
    assert(Index < Values.size() && "parameter index out of range");
    return Values[Index];
  }

  int64_t integer(unsigned Index) const {
    return static_cast<int64_t>(real(Index));
  }

  unsigned category(unsigned Index) const {
    double V = real(Index);
    assert(V >= 0.0 && "categorical value must be non-negative");
    return static_cast<unsigned>(V);
  }

  void set(unsigned Index, double Value) {
    assert(Index < Values.size() && "parameter index out of range");
    Values[Index] = Value;
  }

  const std::vector<double> &values() const { return Values; }
  std::vector<double> &values() { return Values; }

  bool operator==(const Configuration &O) const { return Values == O.Values; }

  /// Compact textual form "v0 v1 v2 ...", parseable by fromString.
  std::string toString() const;
  /// Parses toString output. \returns false on malformed input.
  static bool fromString(const std::string &Text, Configuration &Out);

private:
  std::vector<double> Values;
};

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_CONFIGSPACE_H

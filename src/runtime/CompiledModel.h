//===- runtime/CompiledModel.h - Lowered, servable model form -------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled inference path: a loaded serialize::TrainedModel is
/// lowered once into one contiguous, pointer-free arena (via the
/// learners' compileInto hooks, see ml/CompiledArena.h), and every online
/// decision afterwards is array walks over hot cache lines -- no virtual
/// dispatch, no std::function allocation, no tree-node pointer chasing.
///
/// The lowering is semantics-preserving by construction: for the same
/// feature values, a compiled decision replays exactly the arithmetic of
/// the interpreted classifier (same operation order, same comparisons),
/// so chosen landmarks are bit-identical to the polymorphic
/// InputClassifier path. The golden-file suite pins this against the
/// committed *.choices.csv decisions.
///
/// Besides the two classifiers (production + one-level baseline), the
/// landmark Configurations are inlined into the arena as a flat
/// values-by-arity table, so "decision -> configuration values" is one
/// offset computation instead of a vector-of-vectors walk.
///
/// Feature access is a template parameter (any `double(unsigned)`
/// callable), which lets PredictionService plug in its memo-backed
/// extractor with zero indirection on the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_COMPILEDMODEL_H
#define PBT_RUNTIME_COMPILEDMODEL_H

#include "ml/CompiledArena.h"
#include "runtime/SimdLanes.h"
#include "support/AlignedAlloc.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace pbt {
namespace core {
class InputClassifier;
} // namespace core
namespace serialize {
struct TrainedModel;
} // namespace serialize
namespace runtime {

class CompiledModel {
public:
  /// Reusable per-caller working memory: decideBatch gives each worker
  /// shard its own Scratch so the hot path never allocates and never
  /// shares mutable state across threads.
  struct Scratch {
    /// Bayes posterior accumulator (>= the class count).
    std::vector<double> LogPost;
    /// One-level dense feature row (>= the flat feature count).
    std::vector<double> Row;

    /// Lane-major staging block for the SIMD engines: feature F of lane
    /// element I sits at LaneBlock[F * Width + I] for the serving
    /// engine's Width. Sized Dim * kMaxLaneWidth (enough for any tier)
    /// and zero-initialized so idle lanes always read defined values.
    support::CacheAlignedVector<double> LaneBlock;
    /// Backing store carved into LaneScratchView sections; every
    /// section starts on a 64-byte boundary.
    support::CacheAlignedVector<double> LaneF64;
    support::CacheAlignedVector<int32_t> LaneI32;
    /// Section sizes recorded by makeScratch for the carve below.
    unsigned LaneClasses = 0;
    unsigned LaneDim = 0;

    /// Carves the lane working-memory view out of LaneF64/LaneI32. The
    /// carve is tier-independent: sections are sized for kMaxLaneWidth,
    /// and narrower engines simply use a shorter stride within them.
    LaneScratchView laneView() {
      constexpr unsigned W = kMaxLaneWidth;
      constexpr unsigned WI32 = 2 * kMaxLaneWidth; // 64B of int32 each
      LaneScratchView V;
      double *F = LaneF64.data();
      V.LogPost = F;
      V.Row = F + static_cast<size_t>(LaneClasses) * W;
      V.V = V.Row + static_cast<size_t>(LaneDim) * W;
      V.T = V.V + W;
      V.MaxLog = V.T + W;
      int32_t *I = LaneI32.data();
      V.Node = I;
      V.Lo = I + WI32;
      V.Hi = I + 2 * WI32;
      V.Best = I + 3 * WI32;
      V.State = I + 4 * WI32;
      return V;
    }
  };

  CompiledModel() = default;

  /// Lowers a loaded model (production classifier, one-level baseline,
  /// landmark configurations). Returns a non-ready model when \p Model
  /// has no production classifier or no landmarks.
  static CompiledModel compile(const serialize::TrainedModel &Model);

  /// Lower-level entry used by tests and compile(): lowers the given
  /// classifiers directly. \p OneLevel may be null (no baseline).
  static CompiledModel compileClassifiers(
      const core::InputClassifier &Production,
      const core::InputClassifier *OneLevel, unsigned NumFlat,
      unsigned NumLandmarks);

  bool ready() const { return Ready; }
  bool hasOneLevel() const { return HasOneLevel; }
  unsigned numFlat() const { return NumFlat; }
  unsigned numLandmarks() const { return NumLandmarks; }

  /// Scratch pre-sized for both classifiers of this model.
  Scratch makeScratch() const;

  /// Arena footprint in bytes (reports/serve diagnostics).
  size_t arenaBytes() const {
    return Arena.F64.size() * sizeof(double) +
           Arena.I32.size() * sizeof(int32_t);
  }

  /// Landmark configuration values inlined into the arena; valid while
  /// this model is alive. Arity is uniform across landmarks.
  unsigned landmarkArity() const { return Arity; }
  const double *landmarkValues(unsigned Landmark) const {
    assert(Landmark < NumLandmarks && "landmark out of range");
    return Arena.F64.data() + LandmarkBase +
           static_cast<size_t>(Landmark) * Arity;
  }

  /// Which parameters *exist* under landmark \p Landmark (bit P set =
  /// parameter P is active in the model's conditional config space),
  /// precomputed once at compile time from the recorded space. Inactive
  /// positions of landmarkValues hold the canonical pin value; consumers
  /// applying a decision (or diffing two landmarks) can mask them out
  /// instead of re-walking parent chains per decision. All-ones over the
  /// arity when the model carries no space (legacy/synthetic models).
  uint64_t landmarkActiveMask(unsigned Landmark) const {
    assert(Landmark < NumLandmarks && "landmark out of range");
    return LandmarkMasks.empty() ? fullMask(Arity) : LandmarkMasks[Landmark];
  }

  /// Decides through the lowered production classifier. \p Get is
  /// invoked as Get(flatFeature) only for features actually examined.
  template <typename GetFeature>
  unsigned decideProduction(Scratch &S, GetFeature &&Get) const {
    assert(Ready && "decide on a non-ready CompiledModel");
    return classify(Production, S, Get);
  }

  /// Decides through the lowered one-level baseline.
  template <typename GetFeature>
  unsigned decideOneLevel(Scratch &S, GetFeature &&Get) const {
    assert(Ready && HasOneLevel && "no compiled one-level baseline");
    return classify(Baseline, S, Get);
  }

  /// Kind tags, so the batch driver can tell which classifiers consume
  /// every flat feature (OneLevel) versus an examined subset.
  ml::CompiledKind productionKind() const { return Production.Kind; }
  ml::CompiledKind baselineKind() const { return Baseline.Kind; }
  /// Feature-space dimension of a OneLevel production classifier: the
  /// exact flat range [0, Dim) a cold classification extracts.
  unsigned productionDim() const { return Production.Dim; }

  /// The flat features the production classifier can ever examine
  /// (sorted, deduplicated): a tree's split features, a Bayes model's
  /// acquisition order, a OneLevel's full [0, Dim). Lane staging fills
  /// exactly this set -- for subset classifiers that is far fewer
  /// copies than the whole flat space, and features outside it are
  /// never read by any kernel.
  const std::vector<uint32_t> &productionReads() const {
    return ProductionReads;
  }

  /// Classifies \p Count (<= E.Width) inputs staged lane-major in
  /// S.LaneBlock (stride E.Width) through the production classifier
  /// with lane engine \p E, writing labels to Out[0..Count). Decisions
  /// are bit-identical to decideProduction on the same feature values.
  void classifyProductionBlock(const LaneEngine &E, Scratch &S,
                               unsigned Count, unsigned *Out) const {
    assert(Ready && "classify on a non-ready CompiledModel");
    classifyBlock(Production, E, S, Count, Out);
  }

  /// Same, through the one-level baseline.
  void classifyBaselineBlock(const LaneEngine &E, Scratch &S,
                             unsigned Count, unsigned *Out) const {
    assert(Ready && HasOneLevel && "no compiled one-level baseline");
    classifyBlock(Baseline, E, S, Count, Out);
  }

private:
  void classifyBlock(const ml::CompiledClassifier &C, const LaneEngine &E,
                     Scratch &S, unsigned Count, unsigned *Out) const {
    assert(Count >= 1 && Count <= E.Width && "lane count out of range");
    assert(S.LaneBlock.size() >= static_cast<size_t>(E.Width) *
                                     (S.LaneDim ? S.LaneDim : 1) &&
           "lane scratch from a different model");
    LaneModelView M{Arena.F64.data(), Arena.I32.data(), &C};
    LaneScratchView V = S.laneView();
    E.ClassifyBlock(M, S.LaneBlock.data(), Count, Out, V);
  }

  /// The single dispatch point: one switch on the kind tag, then pure
  /// array walks. Each case replays its interpreter counterpart
  /// operation-for-operation (see the parity notes inline) so decisions
  /// cannot drift between the two paths.
  template <typename GetFeature>
  unsigned classify(const ml::CompiledClassifier &C, Scratch &S,
                    GetFeature &Get) const {
    const double *F64 = Arena.F64.data();
    const int32_t *I32 = Arena.I32.data();
    switch (C.Kind) {
    case ml::CompiledKind::Constant:
    case ml::CompiledKind::MaxApriori:
      return C.Landmark;

    case ml::CompiledKind::Tree: {
      // DecisionTree::predictLazy over struct-of-arrays nodes.
      const int32_t *Feature = I32 + C.TreeFeature;
      const int32_t *Left = I32 + C.TreeLeft;
      const int32_t *Right = I32 + C.TreeRight;
      const double *Threshold = F64 + C.TreeThreshold;
      int32_t N = 0;
      for (;;) {
        int32_t F = Feature[N];
        if (F < 0)
          return static_cast<unsigned>(Left[N]); // leaf: label
        N = Get(static_cast<unsigned>(F)) <= Threshold[N] ? Left[N]
                                                          : Right[N];
      }
    }

    case ml::CompiledKind::Bayes: {
      // IncrementalBayes::predictLazy: acquire features in order,
      // update the log posterior, stop once some class clears the
      // threshold. LogPost starts from the pre-logged priors.
      const unsigned Classes = C.Classes, Bins = C.Bins;
      double *LogPost = S.LogPost.data();
      assert(S.LogPost.size() >= Classes && "scratch too small");
      const double *LogPrior = F64 + C.LogPriorBase;
      for (unsigned K = 0; K != Classes; ++K)
        LogPost[K] = LogPrior[K];
      const int32_t *Order = I32 + C.OrderBase;
      unsigned Best = 0;
      for (unsigned Pos = 0; Pos != C.OrderLen; ++Pos) {
        double Value = Get(static_cast<unsigned>(Order[Pos]));
        const double *Edges =
            F64 + C.EdgeBase + static_cast<size_t>(Pos) * (Bins - 1);
        unsigned R = 0;
        while (R < Bins - 1 && Value > Edges[R])
          ++R;
        const double *LP = F64 + C.LogProbBase +
                           static_cast<size_t>(Pos) * Classes * Bins + R;
        for (unsigned K = 0; K != Classes; ++K)
          LogPost[K] += LP[static_cast<size_t>(K) * Bins];

        // One fused pass with max_element semantics (first maximum):
        // the interpreter's two max_element scans use the same strict
        // comparison, so MaxLog and Best come out identical.
        double MaxLog = LogPost[0];
        Best = 0;
        for (unsigned K = 1; K != Classes; ++K)
          if (MaxLog < LogPost[K]) {
            MaxLog = LogPost[K];
            Best = K;
          }
        // The interpreter sums Z += exp(LogPost[K] - MaxLog) over all K
        // and then divides exp(LogPost[Best] - MaxLog) by it. Since
        // LogPost[Best] IS MaxLog, that argument is exactly 0.0 and
        // std::exp(0.0) is exactly 1.0 -- so Best's Z term is the
        // constant 1.0 and the posterior is 1.0 / Z, bit for bit. This
        // drops one exp per acquired feature from the hot path.
        double Z = 0.0;
        for (unsigned K = 0; K != Classes; ++K)
          Z += K == Best ? 1.0 : std::exp(LogPost[K] - MaxLog);
        double Posterior = 1.0 / Z;
        if (Posterior > C.PosteriorThreshold)
          return Best;
      }
      return Best;
    }

    case ml::CompiledKind::OneLevel: {
      // OneLevelClassifier::classify: extract every feature in flat
      // order, apply the fused normalizer, nearest centroid wins.
      const unsigned Dim = C.Dim;
      double *Row = S.Row.data();
      assert(S.Row.size() >= Dim && "scratch too small");
      for (unsigned F = 0; F != Dim; ++F)
        Row[F] = Get(F);
      const double *Norm = F64 + C.NormBase;
      for (unsigned F = 0; F != Dim; ++F) {
        double Scale = Norm[2 * F + 1];
        Row[F] = Scale != 0.0 ? (Row[F] - Norm[2 * F]) / Scale : 0.0;
      }
      const double *Centroids = F64 + C.CentroidBase;
      double BestD = std::numeric_limits<double>::max();
      unsigned BestK = 0;
      for (unsigned K = 0; K != C.NumCentroids; ++K) {
        const double *P = Centroids + static_cast<size_t>(K) * Dim;
        double Sum = 0.0;
        for (unsigned F = 0; F != Dim; ++F) {
          double Delta = P[F] - Row[F];
          Sum += Delta * Delta;
        }
        if (Sum < BestD) {
          BestD = Sum;
          BestK = K;
        }
      }
      return static_cast<unsigned>(I32[C.ClusterLandmarkBase + BestK]);
    }
    }
    assert(false && "unknown compiled classifier kind");
    return 0;
  }

  static uint64_t fullMask(unsigned Bits) {
    return Bits >= 64 ? ~uint64_t(0) : (uint64_t(1) << Bits) - 1;
  }

  ml::CompiledArena Arena;
  ml::CompiledClassifier Production{};
  ml::CompiledClassifier Baseline{};
  std::vector<uint32_t> ProductionReads;
  std::vector<uint64_t> LandmarkMasks;
  bool Ready = false;
  bool HasOneLevel = false;
  unsigned NumFlat = 0;
  unsigned NumLandmarks = 0;
  unsigned Arity = 0;
  uint32_t LandmarkBase = 0;
};

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_COMPILEDMODEL_H

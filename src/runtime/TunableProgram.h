//===- runtime/TunableProgram.h - The program-under-tuning interface ------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TunableProgram is the contract between a benchmark (a PetaBricks-style
/// program with algorithmic choices, input features and optionally a
/// variable-accuracy metric) and everything above it: the evolutionary
/// autotuner, the two-level learning pipeline, the oracles, and the
/// benchmark harnesses.
///
/// A program owns a set of training/test inputs (created through its own
/// typed generator API and addressed here by index), can run any input
/// under any Configuration reporting deterministic cost and accuracy, and
/// exposes its input_feature extractors, each evaluable at z sampling
/// levels of increasing cost -- mirroring the paper's language extension
/// where a `level` tunable controls extractor sampling rates.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_TUNABLEPROGRAM_H
#define PBT_RUNTIME_TUNABLEPROGRAM_H

#include "runtime/ConfigSpace.h"
#include "support/Cost.h"

#include <optional>
#include <string>
#include <vector>

namespace pbt {
namespace runtime {

/// Declaration of one input_feature extractor (a "property" in the paper's
/// terms). Each property can be sampled at Levels increasing-cost levels;
/// property x level pairs form the M = u*z machine-learning features.
struct FeatureInfo {
  std::string Name;
  unsigned Levels = 3;
};

/// Variable-accuracy requirements (paper Section 2.3/3.3): a computation
/// result counts as accurate when the program's accuracy metric reaches
/// AccuracyThreshold; a classifier/configuration is acceptable when at
/// least SatisfactionThreshold of inputs are accurate.
struct AccuracySpec {
  double AccuracyThreshold = 0.0;
  double SatisfactionThreshold = 0.95;
};

/// Outcome of one program run: deterministic cost ("time") plus the value
/// of the program's accuracy metric (1.0 for exact programs).
struct RunResult {
  double TimeUnits = 0.0;
  double Accuracy = 1.0;
};

/// Abstract interface implemented by each of the six benchmarks.
class TunableProgram {
public:
  virtual ~TunableProgram();

  /// Short identifier, e.g. "sort" or "poisson2d".
  virtual std::string name() const = 0;

  /// The algorithmic configuration space searched by the autotuner.
  virtual const ConfigSpace &space() const = 0;

  /// The input_feature declarations, in a fixed order.
  virtual std::vector<FeatureInfo> features() const = 0;

  /// Accuracy requirements; std::nullopt for exact programs (sort).
  virtual std::optional<AccuracySpec> accuracy() const = 0;

  /// Number of inputs currently owned by the program.
  virtual size_t numInputs() const = 0;

  /// Evaluates property \p Feature of input \p Input at sampling level
  /// \p Level (0 = cheapest), charging the extraction work to \p Cost.
  virtual double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                                support::CostCounter &Cost) const = 0;

  /// Runs input \p Input under \p Config. Work is charged to \p Cost; the
  /// returned RunResult::TimeUnits must equal the charged work.
  virtual RunResult run(size_t Input, const Configuration &Config,
                        support::CostCounter &Cost) const = 0;

  /// One-line human description of input \p Input for reports, e.g.
  /// "sawtooth n=1024". Defaults to "input <i>". Harnesses use this
  /// instead of downcasting to concrete benchmark types.
  virtual std::string describeInput(size_t Input) const;

  /// Human-readable decoding of \p Config, e.g. the selector rule a sort
  /// configuration encodes. Defaults to "name=value ..." over the space's
  /// parameters.
  virtual std::string describeConfiguration(const Configuration &Config) const;

  /// Convenience: total number of ML features (sum of per-property levels).
  unsigned numMLFeatures() const;

  /// Convenience: run without an external counter. (Named differently
  /// from run() so derived-class overrides do not hide it.)
  RunResult runOnce(size_t Input, const Configuration &Config) const {
    support::CostCounter C;
    return run(Input, Config, C);
  }
};

/// Maps a flat ML-feature index to its (property, level) pair and back.
/// Flat order: property 0 levels 0..z0-1, then property 1, ...
class FeatureIndex {
public:
  explicit FeatureIndex(const std::vector<FeatureInfo> &Features);

  unsigned numProperties() const {
    return static_cast<unsigned>(Offsets.size());
  }
  unsigned numFlat() const { return Total; }
  unsigned levels(unsigned Property) const;
  unsigned flat(unsigned Property, unsigned Level) const;
  unsigned propertyOf(unsigned Flat) const;
  unsigned levelOf(unsigned Flat) const;
  const std::string &propertyName(unsigned Property) const {
    return Names[Property];
  }
  /// Name of a flat feature, e.g. "sortedness@2".
  std::string flatName(unsigned Flat) const;

private:
  std::vector<unsigned> Offsets; // per property, first flat index
  std::vector<unsigned> Counts;  // per property, number of levels
  std::vector<std::string> Names;
  unsigned Total = 0;
};

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_TUNABLEPROGRAM_H

//===- runtime/SimdLanesAvx2.cpp - AVX2 lane engine -----------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
//
// The AVX2 lane engine: the shared kernels compiled with -mavx2 (see
// CMakeLists' per-source COMPILE_OPTIONS), width 8 = one 512-bit row
// split across two ymm registers per operation. The anonymous namespace
// around the include keeps this instantiation from ODR-merging with the
// other tiers' TUs. Must only be executed when
// support::detectSimdTier() reports Avx2.
//
//===----------------------------------------------------------------------===//

#include "runtime/SimdLanes.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace {
#define PBT_LANE_WIDTH 8
#include "runtime/SimdLanesKernels.inc"
} // namespace

namespace pbt {
namespace runtime {

const LaneEngine &laneEngineAvx2() {
  static const LaneEngine Engine{support::SimdTier::Avx2, kW,
                                 &laneClassifyBlock};
  return Engine;
}

} // namespace runtime
} // namespace pbt

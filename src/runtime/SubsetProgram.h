//===- runtime/SubsetProgram.h - Row-subset view of a program ---------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TunableProgram view exposing a chosen subset of another program's
/// inputs, re-indexed to [0, n). Everything else (configuration space,
/// feature declarations, accuracy spec, the run/extract semantics)
/// delegates to the base program, so the view is exactly "the same
/// workload restricted to these inputs".
///
/// This is what lets the two-level training pipeline run unchanged on a
/// reservoir sample of live traffic: runtime::AdaptiveService wraps the
/// sampled universe indices in a SubsetProgram and hands it straight to
/// core::trainSystem. Duplicate rows are allowed and meaningful -- a
/// request served twice appears twice, weighting training towards the
/// traffic actually observed.
///
/// The view borrows the base program; keep the base alive while the view
/// (or anything trained against it) is in use.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_SUBSETPROGRAM_H
#define PBT_RUNTIME_SUBSETPROGRAM_H

#include "runtime/TunableProgram.h"

#include <cassert>
#include <utility>
#include <vector>

namespace pbt {
namespace runtime {

class SubsetProgram : public TunableProgram {
public:
  SubsetProgram(const TunableProgram &Base, std::vector<size_t> Rows)
      : Base(Base), Rows(std::move(Rows)) {
#ifndef NDEBUG
    for (size_t Row : this->Rows)
      assert(Row < Base.numInputs() && "subset row out of range");
#endif
  }

  std::string name() const override { return Base.name(); }
  const ConfigSpace &space() const override { return Base.space(); }
  std::vector<FeatureInfo> features() const override {
    return Base.features();
  }
  std::optional<AccuracySpec> accuracy() const override {
    return Base.accuracy();
  }
  size_t numInputs() const override { return Rows.size(); }

  double extractFeature(size_t Input, unsigned Feature, unsigned Level,
                        support::CostCounter &Cost) const override {
    assert(Input < Rows.size() && "input out of range");
    return Base.extractFeature(Rows[Input], Feature, Level, Cost);
  }

  RunResult run(size_t Input, const Configuration &Config,
                support::CostCounter &Cost) const override {
    assert(Input < Rows.size() && "input out of range");
    return Base.run(Rows[Input], Config, Cost);
  }

  std::string describeInput(size_t Input) const override {
    assert(Input < Rows.size() && "input out of range");
    return Base.describeInput(Rows[Input]);
  }
  std::string
  describeConfiguration(const Configuration &Config) const override {
    return Base.describeConfiguration(Config);
  }

  /// The base-program input id behind view row \p Input.
  size_t baseRow(size_t Input) const { return Rows[Input]; }
  const std::vector<size_t> &rows() const { return Rows; }
  const TunableProgram &base() const { return Base; }

private:
  const TunableProgram &Base;
  std::vector<size_t> Rows;
};

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_SUBSETPROGRAM_H

//===- runtime/DriftMonitor.h - Live-traffic distribution-shift detector ---==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects when live inputs no longer look like the sample a model was
/// trained on -- the trigger of the adaptive serving loop. The paper's
/// whole premise is that the best algorithmic configuration depends on
/// the input distribution; this monitor is what notices the distribution
/// moved out from under a deployed model.
///
/// Three views of every served request are maintained over a sliding
/// window (streaming; O(window) memory, no per-request allocation):
///
///   * the flat feature vector         (per-feature windowed mean/variance
///                                      via support/Statistics),
///   * the K-means cluster the input lands in against the model's Level-1
///     centroids                       (cluster-assignment histogram), and
///   * the landmark the model chose    (decision-mix histogram).
///
/// The reference side of the two-window test comes from the trained model
/// itself (its recorded evidence tables, cluster assignment and refined
/// training labels -- see referenceFrom()), so no extra training pass is
/// needed. The divergence test is deliberately cheap: the maximum
/// per-feature standardized mean shift plus total-variation distances
/// between the histograms, checked every few observations. Any score
/// crossing its threshold flags drift.
///
/// After the serving loop reacts (hot-swap or explicit dismissal) it
/// rebases the monitor: the reference becomes the new model's training
/// stats (rebaseToModel) or the live window itself (rebaseToWindow, the
/// "accept the new regime" response when a retrain did not beat the
/// champion), and a cooldown suppresses immediate re-flagging.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_DRIFTMONITOR_H
#define PBT_RUNTIME_DRIFTMONITOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbt {
namespace serialize {
struct TrainedModel;
} // namespace serialize
namespace runtime {

struct DriftMonitorOptions {
  /// Sliding-window length (observations).
  size_t Window = 64;
  /// Minimum live observations before any divergence test runs.
  size_t MinSamples = 32;
  /// Run the divergence test every this many observations (0 = every
  /// Window/4, at least 1).
  size_t CheckInterval = 0;
  /// Observations ignored after a rebase before testing resumes, so one
  /// adaptation cannot immediately trigger the next.
  size_t Cooldown = 32;
  /// Flag when some feature's windowed mean moves this many reference
  /// standard deviations from the reference mean.
  double MeanShiftThreshold = 2.0;
  /// Flag when the cluster-assignment histogram's total-variation
  /// distance from the reference exceeds this.
  double ClusterTVThreshold = 0.45;
  /// Flag when the decision-mix histogram's total-variation distance
  /// from the reference exceeds this.
  double DecisionTVThreshold = 0.45;
};

/// Outcome of one divergence test.
struct DriftSignal {
  bool Drifted = false;
  /// Largest standardized mean shift and the feature attaining it.
  double MeanShift = 0.0;
  unsigned MeanShiftFeature = 0;
  /// Total-variation distances, each in [0, 1].
  double ClusterTV = 0.0;
  double DecisionTV = 0.0;
  /// Observation count (since construction) at which the test ran.
  uint64_t AtObservation = 0;
};

class DriftMonitor {
public:
  DriftMonitor() = default;
  DriftMonitor(unsigned NumFeatures, unsigned NumClusters,
               unsigned NumDecisions, const DriftMonitorOptions &Options);

  /// Builds a monitor whose reference window is \p Model's own training
  /// sample: feature means/variances over the recorded evidence rows,
  /// the Level-1 cluster assignment histogram, and the refined
  /// training-label (decision) histogram.
  static DriftMonitor referenceFrom(const serialize::TrainedModel &Model,
                                    const DriftMonitorOptions &Options);

  bool ready() const { return NumFeatures != 0; }
  unsigned numFeatures() const { return NumFeatures; }
  unsigned numClusters() const { return NumClusters; }
  unsigned numDecisions() const { return NumDecisions; }

  /// Replaces the reference window statistics. Histograms are counts (or
  /// any nonnegative weights); they are normalized internally.
  void setReference(std::vector<double> FeatureMean,
                    std::vector<double> FeatureVar,
                    std::vector<double> ClusterHist,
                    std::vector<double> DecisionHist);

  /// Feeds one served request: its flat feature row (NumFeatures values),
  /// the cluster it lands in, and the landmark decided. Returns true when
  /// this observation triggered a divergence test that flagged drift (the
  /// signal is kept in lastSignal() until the next test).
  bool observe(const double *Features, unsigned Cluster, unsigned Decision);

  /// Runs the divergence test on the current window immediately,
  /// regardless of interval/cooldown (still requires MinSamples).
  DriftSignal check() const;

  /// Most recent test outcome (all-zero before the first test).
  const DriftSignal &lastSignal() const { return Last; }

  /// Total observations fed since construction.
  uint64_t observations() const { return Observations; }
  /// Live observations currently in the window.
  size_t windowFill() const { return Fill; }

  /// Reference := \p Model's training stats; window cleared, cooldown
  /// started. The post-hot-swap rebase.
  void rebaseToModel(const serialize::TrainedModel &Model);
  /// Reference := the current live window; window cleared, cooldown
  /// started. The "new regime accepted without a swap" rebase.
  void rebaseToWindow();

  const DriftMonitorOptions &options() const { return Opts; }

private:
  void liveStats(std::vector<double> &Mean, std::vector<double> &Var,
                 std::vector<double> &ClusterHist,
                 std::vector<double> &DecisionHist) const;

  DriftMonitorOptions Opts;
  unsigned NumFeatures = 0;
  unsigned NumClusters = 0;
  unsigned NumDecisions = 0;

  // Reference window statistics.
  std::vector<double> RefMean, RefVar, RefClusterHist, RefDecisionHist;

  // Live sliding window (rings of length Opts.Window).
  std::vector<double> FeatRing;      // Window x NumFeatures, row-major
  std::vector<unsigned> ClusterRing; // Window
  std::vector<unsigned> DecisionRing;
  size_t Fill = 0;
  size_t Next = 0;

  uint64_t Observations = 0;
  uint64_t CooldownUntil = 0;
  DriftSignal Last;
};

/// Total-variation distance 0.5 * sum |p - q| between two nonnegative
/// weight vectors of equal length, each normalized to a distribution
/// first (all-zero vectors are treated as uniform).
double totalVariation(const std::vector<double> &P,
                      const std::vector<double> &Q);

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_DRIFTMONITOR_H

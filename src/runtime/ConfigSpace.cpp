//===- runtime/ConfigSpace.cpp --------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/ConfigSpace.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace pbt;
using namespace pbt::runtime;

unsigned ConfigSpace::addCategorical(std::string Name, unsigned Cardinality) {
  assert(Cardinality >= 1 && "categorical parameter needs at least 1 choice");
  ParamSpec P;
  P.Name = std::move(Name);
  P.Kind = ParamKind::Categorical;
  P.Min = 0.0;
  P.Max = static_cast<double>(Cardinality - 1);
  P.Cardinality = Cardinality;
  Params.push_back(std::move(P));
  return static_cast<unsigned>(Params.size() - 1);
}

unsigned ConfigSpace::addInteger(std::string Name, int64_t Min, int64_t Max,
                                 bool LogScale) {
  assert(Min <= Max && "empty integer range");
  assert((!LogScale || Min > 0) && "log-scaled range must be positive");
  ParamSpec P;
  P.Name = std::move(Name);
  P.Kind = ParamKind::Integer;
  P.Min = static_cast<double>(Min);
  P.Max = static_cast<double>(Max);
  P.LogScale = LogScale;
  Params.push_back(std::move(P));
  return static_cast<unsigned>(Params.size() - 1);
}

unsigned ConfigSpace::addReal(std::string Name, double Min, double Max,
                              bool LogScale) {
  assert(Min <= Max && "empty real range");
  assert((!LogScale || Min > 0.0) && "log-scaled range must be positive");
  ParamSpec P;
  P.Name = std::move(Name);
  P.Kind = ParamKind::Real;
  P.Min = Min;
  P.Max = Max;
  P.LogScale = LogScale;
  Params.push_back(std::move(P));
  return static_cast<unsigned>(Params.size() - 1);
}

int ConfigSpace::indexOf(const std::string &Name) const {
  for (size_t I = 0; I != Params.size(); ++I)
    if (Params[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

void ConfigSpace::makeConditional(unsigned Index, unsigned Parent,
                                  const std::vector<unsigned> &ActivatingValues) {
  assert(Index < Params.size() && "parameter index out of range");
  assert(Parent < Index && "parents must precede children (no cycles)");
  assert(Params[Parent].Kind == ParamKind::Categorical &&
         "conditional parent must be categorical");
  assert(Params[Parent].Cardinality <= 64 &&
         "activation set must fit a 64-bit mask");
  assert(!ActivatingValues.empty() && "conditional needs >= 1 activating value");
  uint64_t Mask = 0;
  for (unsigned V : ActivatingValues) {
    assert(V < Params[Parent].Cardinality && "activating value out of range");
    Mask |= uint64_t(1) << V;
  }
  Params[Index].Parent = static_cast<int>(Parent);
  Params[Index].ParentMask = Mask;
}

bool ConfigSpace::active(const Configuration &Config, unsigned Index) const {
  assert(Config.size() == Params.size() && "configuration/space mismatch");
  // Walk the parent chain; makeConditional guarantees Parent < Index, so
  // the walk strictly descends and terminates.
  int I = static_cast<int>(Index);
  while (Params[I].Parent >= 0) {
    int Parent = Params[I].Parent;
    unsigned Cat = Config.category(static_cast<unsigned>(Parent));
    if (!((Params[I].ParentMask >> Cat) & 1))
      return false;
    I = Parent;
  }
  return true;
}

uint64_t ConfigSpace::activeMask(const Configuration &Config) const {
  assert(Params.size() <= 64 && "active mask capped at 64 parameters");
  uint64_t Mask = 0;
  for (size_t I = 0; I != Params.size(); ++I)
    if (active(Config, static_cast<unsigned>(I)))
      Mask |= uint64_t(1) << I;
  return Mask;
}

/// The deterministic defaultConfig value of one parameter.
static double defaultValue(const ParamSpec &P) {
  switch (P.Kind) {
  case ParamKind::Categorical:
    return 0.0;
  case ParamKind::Integer: {
    double Mid = P.LogScale ? std::exp((std::log(P.Min) + std::log(P.Max)) / 2)
                            : (P.Min + P.Max) / 2;
    return std::clamp(std::round(Mid), P.Min, P.Max);
  }
  case ParamKind::Real:
    return P.LogScale ? std::exp((std::log(P.Min) + std::log(P.Max)) / 2)
                      : (P.Min + P.Max) / 2;
  }
  assert(false && "unknown parameter kind");
  return P.Min;
}

double ConfigSpace::canonicalValue(unsigned Index) const {
  return defaultValue(param(Index));
}

void ConfigSpace::canonicalize(Configuration &Config) const {
  assert(Config.size() == Params.size() && "configuration/space mismatch");
  // One pass suffices: activity tests the *whole* parent chain, so
  // pinning an inactive categorical parent to category 0 can never flip a
  // descendant's activity -- the descendant's chain walk already fails at
  // the level that deactivated the parent.
  for (size_t I = 0; I != Params.size(); ++I)
    if (!active(Config, static_cast<unsigned>(I)))
      Config.set(static_cast<unsigned>(I), defaultValue(Params[I]));
}

/// Draws a uniform value for \p P, respecting integrality and log scaling.
static double sampleParam(const ParamSpec &P, support::Rng &Rng) {
  switch (P.Kind) {
  case ParamKind::Categorical:
    return static_cast<double>(Rng.index(P.Cardinality));
  case ParamKind::Integer: {
    if (P.LogScale) {
      double L = Rng.uniform(std::log(P.Min), std::log(P.Max));
      double V = std::round(std::exp(L));
      return std::clamp(V, P.Min, P.Max);
    }
    return static_cast<double>(
        Rng.range(static_cast<int64_t>(P.Min), static_cast<int64_t>(P.Max)));
  }
  case ParamKind::Real:
    if (P.LogScale)
      return std::exp(Rng.uniform(std::log(P.Min), std::log(P.Max)));
    return Rng.uniform(P.Min, P.Max);
  }
  assert(false && "unknown parameter kind");
  return P.Min;
}

Configuration ConfigSpace::randomConfig(support::Rng &Rng) const {
  std::vector<double> V(Params.size());
  for (size_t I = 0; I != Params.size(); ++I)
    V[I] = sampleParam(Params[I], Rng);
  Configuration Config(std::move(V));
  canonicalize(Config);
  return Config;
}

Configuration ConfigSpace::defaultConfig() const {
  std::vector<double> V(Params.size());
  for (size_t I = 0; I != Params.size(); ++I)
    V[I] = defaultValue(Params[I]);
  // Already canonical: inactive parameters hold exactly their pin value.
  return Configuration(std::move(V));
}

void ConfigSpace::mutate(Configuration &Config, support::Rng &Rng, double Rate,
                         double Strength) const {
  assert(Config.size() == Params.size() && "configuration/space mismatch");
  uint64_t WasActive = activeMask(Config);
  for (size_t I = 0; I != Params.size(); ++I) {
    // Dead-branch parameters don't exist under this config; spending the
    // mutation budget on them would only churn values canonicalize pins
    // right back.
    if (!((WasActive >> I) & 1))
      continue;
    if (!Rng.chance(Rate))
      continue;
    const ParamSpec &P = Params[I];
    // A small fraction of mutations restart the parameter entirely; this is
    // the PetaBricks-style "reset" mutator that keeps search ergodic.
    if (Rng.chance(0.2)) {
      Config.set(static_cast<unsigned>(I), sampleParam(P, Rng));
      continue;
    }
    double V = Config.real(static_cast<unsigned>(I));
    switch (P.Kind) {
    case ParamKind::Categorical:
      Config.set(static_cast<unsigned>(I),
                 static_cast<double>(Rng.index(P.Cardinality)));
      break;
    case ParamKind::Integer:
    case ParamKind::Real: {
      double NewV;
      if (P.LogScale) {
        double Span = std::log(P.Max) - std::log(P.Min);
        double L = std::log(std::max(V, P.Min)) +
                   Rng.gaussian(0.0, std::max(1e-12, Strength * Span));
        NewV = std::exp(L);
      } else {
        double Span = P.Max - P.Min;
        NewV = V + Rng.gaussian(0.0, std::max(1e-12, Strength * Span));
      }
      if (P.Kind == ParamKind::Integer) {
        NewV = std::round(NewV);
        // Guarantee progress on fine-grained integer params.
        if (NewV == V)
          NewV = V + (Rng.chance(0.5) ? 1 : -1);
      }
      Config.set(static_cast<unsigned>(I), std::clamp(NewV, P.Min, P.Max));
      break;
    }
    }
  }
  // A parent flip may have opened a branch: parameters active now but not
  // before carry only their pinned value, so give each a fresh uniform
  // sample. Forward order settles nested chains -- resampling a
  // newly-activated categorical can activate ITS children, and they are
  // visited after it with their parent's value already final.
  for (size_t I = 0; I != Params.size(); ++I)
    if (!((WasActive >> I) & 1) && active(Config, static_cast<unsigned>(I)))
      Config.set(static_cast<unsigned>(I), sampleParam(Params[I], Rng));
  canonicalize(Config);
}

Configuration ConfigSpace::crossover(const Configuration &A,
                                     const Configuration &B,
                                     support::Rng &Rng) const {
  assert(A.size() == Params.size() && B.size() == Params.size() &&
         "configuration/space mismatch");
  std::vector<double> V(Params.size());
  for (size_t I = 0; I != Params.size(); ++I)
    V[I] = Rng.chance(0.5) ? A.real(static_cast<unsigned>(I))
                           : B.real(static_cast<unsigned>(I));
  Configuration Child(std::move(V));
  canonicalize(Child);
  return Child;
}

void ConfigSpace::repair(Configuration &Config) const {
  assert(Config.size() == Params.size() && "configuration/space mismatch");
  for (size_t I = 0; I != Params.size(); ++I) {
    const ParamSpec &P = Params[I];
    double V = Config.real(static_cast<unsigned>(I));
    if (P.Kind != ParamKind::Real)
      V = std::round(V);
    Config.set(static_cast<unsigned>(I), std::clamp(V, P.Min, P.Max));
  }
  canonicalize(Config);
}

double ConfigSpace::searchSpaceLog10(double RealResolution) const {
  double Log10 = 0.0;
  for (const ParamSpec &P : Params) {
    switch (P.Kind) {
    case ParamKind::Categorical:
      Log10 += std::log10(static_cast<double>(P.Cardinality));
      break;
    case ParamKind::Integer:
      Log10 += std::log10(P.Max - P.Min + 1.0);
      break;
    case ParamKind::Real:
      Log10 += std::log10(RealResolution);
      break;
    }
  }
  return Log10;
}

std::string Configuration::toString() const {
  std::ostringstream OS;
  OS.precision(17);
  for (size_t I = 0; I != Values.size(); ++I) {
    if (I)
      OS << ' ';
    OS << Values[I];
  }
  return OS.str();
}

bool Configuration::fromString(const std::string &Text, Configuration &Out) {
  std::istringstream IS(Text);
  std::vector<double> V;
  double X;
  while (IS >> X)
    V.push_back(X);
  if (!IS.eof())
    return false;
  Out = Configuration(std::move(V));
  return true;
}

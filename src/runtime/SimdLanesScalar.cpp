//===- runtime/SimdLanesScalar.cpp - Baseline-ISA lane engine -------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
//
// The portable baseline lane engine: same kernels as the SSE4.2/AVX2
// TUs, compiled with no extra -m flags. Width 4 keeps the lane-batched
// control flow (and its exact per-element semantics) identical to the
// wider tiers while lowering to whatever the base target offers.
//
//===----------------------------------------------------------------------===//

#include "runtime/SimdLanes.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace {
#define PBT_LANE_WIDTH 4
#include "runtime/SimdLanesKernels.inc"
} // namespace

namespace pbt {
namespace runtime {

const LaneEngine &laneEngineScalar() {
  static const LaneEngine Engine{support::SimdTier::Scalar, kW,
                                 &laneClassifyBlock};
  return Engine;
}

} // namespace runtime
} // namespace pbt

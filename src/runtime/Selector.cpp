//===- runtime/Selector.cpp -----------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Selector.h"

#include <algorithm>
#include <sstream>

using namespace pbt;
using namespace pbt::runtime;

std::string Selector::str() const {
  std::ostringstream OS;
  for (size_t I = 0; I != Levels.size(); ++I) {
    if (I + 1 == Levels.size())
      OS << "[* -> " << Levels[I].Choice << "]";
    else
      OS << "[n<" << Levels[I].Cutoff << " -> " << Levels[I].Choice << "]";
  }
  if (Levels.empty())
    OS << "[* -> 0]";
  return OS.str();
}

SelectorScheme SelectorScheme::declare(ConfigSpace &Space,
                                       const std::string &Name,
                                       unsigned NumLevels, unsigned NumChoices,
                                       uint64_t MinCutoff,
                                       uint64_t MaxCutoff) {
  assert(NumLevels >= 1 && "selector needs at least one level");
  assert(NumChoices >= 1 && "selector needs at least one choice");
  assert(MinCutoff >= 1 && MinCutoff <= MaxCutoff && "bad cutoff range");
  SelectorScheme S;
  S.NumLevels = NumLevels;
  S.NumChoices = NumChoices;
  for (unsigned I = 0; I != NumLevels; ++I) {
    unsigned Index = Space.addCategorical(
        Name + ".choice" + std::to_string(I), NumChoices);
    if (I == 0)
      S.FirstChoiceParam = Index;
  }
  for (unsigned I = 0; I + 1 < NumLevels; ++I) {
    unsigned Index = Space.addInteger(Name + ".cutoff" + std::to_string(I),
                                      static_cast<int64_t>(MinCutoff),
                                      static_cast<int64_t>(MaxCutoff),
                                      /*LogScale=*/true);
    if (I == 0)
      S.FirstCutoffParam = Index;
  }
  return S;
}

Selector SelectorScheme::instantiate(const Configuration &Config) const {
  assert(NumLevels >= 1 && "scheme was not declared");
  // Gather (cutoff, choice) pairs. Stored cutoffs are unordered; sorting
  // them makes every encoding decode to a monotone rule.
  std::vector<uint64_t> Cutoffs;
  Cutoffs.reserve(NumLevels - 1);
  for (unsigned I = 0; I + 1 < NumLevels; ++I)
    Cutoffs.push_back(
        static_cast<uint64_t>(Config.integer(FirstCutoffParam + I)));
  std::sort(Cutoffs.begin(), Cutoffs.end());

  std::vector<Selector::Level> Levels;
  Levels.reserve(NumLevels);
  for (unsigned I = 0; I != NumLevels; ++I) {
    Selector::Level L;
    L.Cutoff = I + 1 < NumLevels ? Cutoffs[I]
                                 : std::numeric_limits<uint64_t>::max();
    L.Choice = Config.category(FirstChoiceParam + I);
    assert(L.Choice < NumChoices && "choice out of range");
    Levels.push_back(L);
  }
  return Selector(std::move(Levels));
}

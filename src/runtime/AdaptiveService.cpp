//===- runtime/AdaptiveService.cpp ------------------------------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "runtime/AdaptiveService.h"

#include "ml/KMeans.h"
#include "runtime/SubsetProgram.h"

#include <algorithm>
#include <cassert>
#include <exception>

using namespace pbt;
using namespace pbt::runtime;

/// C++17 std::atomic<double> has no fetch_add; the accounting adds are
/// single-writer in practice, but keep them race-free regardless.
static void atomicAdd(std::atomic<double> &A, double V) {
  double Old = A.load(std::memory_order_relaxed);
  while (!A.compare_exchange_weak(Old, Old + V, std::memory_order_relaxed))
    ;
}

AdaptiveService::AdaptiveService(const TunableProgram &Program,
                                 serialize::TrainedModel Initial,
                                 AdaptiveServiceOptions Options)
    : Program(Program), Opts(Options) {
  Status = serialize::validateAgainst(Initial, Program);
  if (!Status)
    return;
  if (!Initial.System.L2.Production || Initial.System.L1.Landmarks.empty()) {
    Status = serialize::LoadStatus::failure(
        "initial model has no production classifier or no landmarks");
    return;
  }
  Index.emplace(Initial.Meta.Features);
  Memo.assign(Program.numInputs(), MemoEntry());
  Monitor = DriftMonitor::referenceFrom(Initial, Opts.Monitor);
  Traffic = ml::Reservoir(std::max<size_t>(1, Opts.ReservoirSize),
                          Opts.ReservoirSeed);

  auto First = std::make_shared<ModelEpoch>();
  First->Model = std::move(Initial);
  // Serving never reads the columnar training substrate; don't let an
  // in-memory-trained initial model pin it for the service's lifetime.
  First->Model.System.Data.reset();
  First->Compiled = CompiledModel::compile(First->Model);
  if (!First->Compiled.ready()) {
    Status = serialize::LoadStatus::failure("initial model failed to compile");
    return;
  }
  publish(std::move(First), nullptr);
  MonitorEpochId = currentEpoch()->Id;
  Ok = true;
}

CompiledModel::Scratch &AdaptiveService::scratchFor(const ModelEpoch &Ep) {
  // Scratch shapes follow the model (e.g. the Bayes class count), so a
  // hot swap invalidates the serving thread's scratch exactly like it
  // invalidates cached decisions.
  if (ScratchEpochId != Ep.Id) {
    MainScratch = Ep.Compiled.makeScratch();
    ScratchEpochId = Ep.Id;
  }
  return MainScratch;
}

void AdaptiveService::syncMonitorTo(const EpochPtr &Ep) {
  if (MonitorEpochId == Ep->Id)
    return;
  // An external swapModel() landed since the monitor's last rebase: its
  // reference (and cluster/decision arity) belongs to a retired model.
  // Adopt the pushed model's training stats before observing against it.
  Monitor.rebaseToModel(Ep->Model);
  Traffic.reset();
  MonitorEpochId = Ep->Id;
}

void AdaptiveService::publish(std::shared_ptr<ModelEpoch> Next,
                              SwapRecord *Attempt) {
  std::lock_guard<std::mutex> Lock(SwapMutex);
  Next->Id = EpochCounter.fetch_add(1, std::memory_order_relaxed) + 1;
  EpochPtr Cur = std::atomic_load(&Current);
  if (Cur)
    Next->Model.Meta.Epoch =
        std::max(Next->Model.Meta.Epoch, Cur->Model.Meta.Epoch + 1);
  if (Attempt) {
    Attempt->ToEpoch = Next->Model.Meta.Epoch;
    Swaps.push_back(*Attempt);
  }
  std::atomic_store(&Current, EpochPtr(std::move(Next)));
}

AdaptiveService::EpochPtr AdaptiveService::currentEpoch() const {
  return std::atomic_load(&Current);
}

uint64_t AdaptiveService::epoch() const {
  EpochPtr Ep = currentEpoch();
  return Ep ? Ep->Model.Meta.Epoch : 0;
}

void AdaptiveService::clearMemo() {
  Memo.assign(Memo.size(), MemoEntry());
}

void AdaptiveService::recordTotals(const Decision &D) {
  DecisionCount.fetch_add(1, std::memory_order_relaxed);
  if (D.Memoized)
    MemoizedCount.fetch_add(1, std::memory_order_relaxed);
  ExtractedCount.fetch_add(D.FeaturesExtracted, std::memory_order_relaxed);
  atomicAdd(CostPaid, D.FeatureCost);
}

AdaptiveService::Decision
AdaptiveService::decideWith(const ModelEpoch &Ep, size_t Input,
                            CompiledModel::Scratch &S) {
  assert(Ok && "decide() on a non-ready AdaptiveService");
  assert(Input < Memo.size() && "input out of range");
  MemoEntry &E = Memo[Input];

  Decision D;
  D.Epoch = Ep.Model.Meta.Epoch;
  if (E.Decided >= 0 && E.DecidedEpochId == static_cast<int64_t>(Ep.Id)) {
    D.Landmark = static_cast<unsigned>(E.Decided);
    D.Config = &Ep.Model.System.L1.Landmarks[D.Landmark];
    D.Memoized = true;
    return D;
  }
  unsigned Landmark = Ep.Compiled.decideProduction(
      S, [&](unsigned Flat) { return featureAt(Input, Flat, &D); });
  assert(Landmark < Ep.Model.System.L1.Landmarks.size() &&
         "classifier predicted a missing landmark");
  D.Landmark = Landmark;
  D.Config = &Ep.Model.System.L1.Landmarks[Landmark];
  D.Memoized = D.FeaturesExtracted == 0;
  E.Decided = static_cast<int32_t>(Landmark);
  E.DecidedEpochId = static_cast<int64_t>(Ep.Id);
  return D;
}

double AdaptiveService::featureAt(size_t Input, unsigned Flat, Decision *D) {
  MemoEntry &E = Memo[Input];
  if (E.Have.empty()) {
    unsigned NumFlat = Index->numFlat();
    E.Values.assign(NumFlat, 0.0);
    E.Have.assign(NumFlat, 0);
  }
  if (!E.Have[Flat]) {
    support::CostCounter C;
    E.Values[Flat] = Program.extractFeature(Input, Index->propertyOf(Flat),
                                            Index->levelOf(Flat), C);
    E.Have[Flat] = 1;
    if (D) {
      D->FeatureCost += C.units();
      ++D->FeaturesExtracted;
    } else {
      atomicAdd(MonitorCost, C.units());
    }
  }
  return E.Values[Flat];
}

const double *AdaptiveService::fullFeatures(size_t Input) {
  unsigned NumFlat = Index->numFlat();
  for (unsigned Flat = 0; Flat != NumFlat; ++Flat)
    featureAt(Input, Flat, nullptr);
  return Memo[Input].Values.data();
}

unsigned AdaptiveService::assignCluster(const ModelEpoch &Ep,
                                        const double *Features) {
  unsigned NumFlat = Index->numFlat();
  ClusterRow.assign(Features, Features + NumFlat);
  Ep.Model.System.L1.Norm.transformRow(ClusterRow);
  return ml::nearestCentroid(Ep.Model.System.L1.Clusters.Centroids,
                             ClusterRow);
}

AdaptiveService::Decision AdaptiveService::decide(size_t Input) {
  EpochPtr Ep = currentEpoch();
  Decision D = decideWith(*Ep, Input, scratchFor(*Ep));
  D.Hold = Ep;
  recordTotals(D);
  return D;
}

AdaptiveService::Decision AdaptiveService::serve(size_t Input) {
  EpochPtr Ep = currentEpoch();
  syncMonitorTo(Ep);
  Decision D = decideWith(*Ep, Input, scratchFor(*Ep));
  D.Hold = Ep;
  recordTotals(D);

  const double *Features = fullFeatures(Input);
  unsigned Cluster = assignCluster(*Ep, Features);
  Traffic.add(Input);
  if (Monitor.observe(Features, Cluster, D.Landmark)) {
    DriftCount.fetch_add(1, std::memory_order_relaxed);
    D.DriftFlagged = true;
    if (Opts.AutoAdapt)
      D.Swapped = adaptNow();
  }
  return D;
}

std::vector<AdaptiveService::Decision>
AdaptiveService::decideBatch(const std::vector<size_t> &Inputs,
                             support::ThreadPool *Pool) {
  assert(Ok && "decideBatch() on a non-ready AdaptiveService");
  // One snapshot for the whole batch: every decision below comes from the
  // same epoch even if swapModel() lands mid-batch on another thread.
  EpochPtr Ep = currentEpoch();
  std::vector<Decision> Out(Inputs.size());
  unsigned Shards = Pool ? std::max(1u, Pool->numThreads()) : 1u;
  if (Shards <= 1 || Inputs.size() <= 1) {
    CompiledModel::Scratch &S = scratchFor(*Ep);
    for (size_t I = 0; I != Inputs.size(); ++I)
      Out[I] = decideWith(*Ep, Inputs[I], S);
  } else {
    // Shard by input id (PredictionService's lock-free memo-ownership
    // rule): every occurrence of one input is served by exactly one
    // worker, so decisions cannot depend on the shard count.
    std::vector<CompiledModel::Scratch> Scratches;
    Scratches.reserve(Shards);
    for (unsigned S = 0; S != Shards; ++S)
      Scratches.push_back(Ep->Compiled.makeScratch());
    Pool->parallelFor(0, Shards, [&](size_t Shard) {
      CompiledModel::Scratch &S = Scratches[Shard];
      for (size_t I = 0; I != Inputs.size(); ++I)
        if (Inputs[I] % Shards == Shard)
          Out[I] = decideWith(*Ep, Inputs[I], S);
    });
  }
  for (Decision &D : Out) {
    D.Hold = Ep;
    recordTotals(D);
  }
  return Out;
}

double AdaptiveService::shadowScore(const ModelEpoch &Ep,
                                    const std::vector<size_t> &Inputs) {
  // Raw compiled walk over the shared feature memo -- deliberately not
  // decideWith(), so scoring an unpublished candidate never seeds the
  // decision cache.
  CompiledModel::Scratch S = Ep.Compiled.makeScratch();
  double Total = 0.0;
  for (size_t Input : Inputs) {
    unsigned Landmark = Ep.Compiled.decideProduction(
        S, [&](unsigned Flat) { return featureAt(Input, Flat, nullptr); });
    Total += Program.runOnce(Input, Ep.Model.System.L1.Landmarks[Landmark])
                 .TimeUnits;
  }
  return Inputs.empty() ? 0.0 : Total / static_cast<double>(Inputs.size());
}

void AdaptiveService::clampRetrainOptions(core::PipelineOptions &Opt,
                                          size_t SampleSize) {
  size_t TrainCount = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(SampleSize) *
                             std::clamp(Opt.TrainFraction, 0.1, 0.9)));
  unsigned MaxLandmarks =
      static_cast<unsigned>(std::max<size_t>(2, TrainCount / 3));
  Opt.L1.NumLandmarks = std::clamp(Opt.L1.NumLandmarks, 2u, MaxLandmarks);
  Opt.L1.TuningNeighborhood = std::max(
      1u, std::min(Opt.L1.TuningNeighborhood,
                   static_cast<unsigned>(TrainCount / Opt.L1.NumLandmarks)));
  Opt.L2.CVFolds = std::clamp(
      Opt.L2.CVFolds, 2u,
      static_cast<unsigned>(std::max<size_t>(2, TrainCount / 2)));
}

bool AdaptiveService::adaptNow() {
  assert(Ok && "adaptNow() on a non-ready AdaptiveService");
  // serve() invokes the drift response synchronously at the detection, so
  // this timer spans the whole drift-to-swap window: the stretch of time
  // during which live traffic keeps being served by the stale champion.
  support::WallTimer Window;
  EpochPtr Ep = currentEpoch();
  Traffic.sampleInto(SampleBuf);
  const std::vector<size_t> &Sample = SampleBuf;
  if (Sample.size() < Opts.MinRetrainInputs ||
      Traffic.distinctCount() < std::max<size_t>(4, Opts.MinRetrainInputs / 2)) {
    // Too little (or too repetitive) evidence to retrain on: accept the
    // live window as the new null hypothesis and move on.
    recordSkip("insufficient reservoir evidence: " +
               std::to_string(Sample.size()) + " samples, " +
               std::to_string(Traffic.distinctCount()) +
               " distinct inputs (need " +
               std::to_string(Opts.MinRetrainInputs) + " / " +
               std::to_string(std::max<size_t>(
                   4, Opts.MinRetrainInputs / 2)) +
               ")");
    Monitor.rebaseToWindow();
    return false;
  }

  SwapRecord Attempt;
  Attempt.FromEpoch = Ep->Model.Meta.Epoch;
  Attempt.AtDecision = DecisionCount.load(std::memory_order_relaxed);

  support::WallTimer RetrainTimer;
  auto Candidate = std::make_shared<ModelEpoch>();
  try {
    SubsetProgram View(Program, Sample);
    core::PipelineOptions Opt = Opts.Retrain;
    if (!Opt.Pool)
      Opt.Pool = Opts.Pool;
    clampRetrainOptions(Opt, Sample.size());
    core::TrainedSystem Sys = core::trainSystem(View, Opt);
    Candidate->Model = serialize::makeModel(
        Ep->Model.Meta.Benchmark, Ep->Model.Meta.Scale,
        Ep->Model.Meta.ProgramSeed, View, std::move(Sys));
    // The columnar substrate is training-only state; a published epoch
    // lives as long as serving (and any outstanding Decision) holds it,
    // so drop the dead weight before publishing.
    Candidate->Model.System.Data.reset();
    Candidate->Model.Meta.Epoch = Ep->Model.Meta.Epoch + 1;
    Candidate->Compiled = CompiledModel::compile(Candidate->Model);
  } catch (const std::exception &E) {
    // A degenerate reservoir (e.g. every sampled input identical in
    // feature space) can defeat the pipeline; serving must not die with
    // it. Keep the champion -- but keep the cause too: a tenant whose
    // every retrain dies here must be diagnosable from its stats.
    recordSkip(std::string("shadow retrain failed: ") + E.what());
    Monitor.rebaseToWindow();
    return false;
  }
  Attempt.RetrainSeconds = RetrainTimer.elapsedSeconds();
  RetrainCount.fetch_add(1, std::memory_order_relaxed);
  if (!Candidate->Compiled.ready()) {
    RejectCount.fetch_add(1, std::memory_order_relaxed);
    Monitor.rebaseToWindow();
    return false;
  }

  // Shadow evaluation: champion and candidate serve the same recent
  // traffic; the measured mean run cost decides.
  support::WallTimer ShadowTimer;
  Attempt.ChampionShadowCost = shadowScore(*Ep, Sample);
  Attempt.CandidateShadowCost = shadowScore(*Candidate, Sample);
  Attempt.ShadowSeconds = ShadowTimer.elapsedSeconds();
  Attempt.Accepted = Attempt.CandidateShadowCost <
                     Attempt.ChampionShadowCost * (1.0 - Opts.SwapMargin);

  if (!Attempt.Accepted) {
    RejectCount.fetch_add(1, std::memory_order_relaxed);
    Attempt.DriftToSwapSeconds = Window.elapsedSeconds();
    {
      std::lock_guard<std::mutex> Lock(SwapMutex);
      Attempt.ToEpoch = Candidate->Model.Meta.Epoch;
      Swaps.push_back(Attempt);
    }
    // The distribution did move; the champion just remains the best
    // answer for it. Adopt the new regime as reference.
    Monitor.rebaseToWindow();
    Traffic.reset();
    return false;
  }

  Attempt.DriftToSwapSeconds = Window.elapsedSeconds();
  publish(std::move(Candidate), &Attempt);
  SwapCount.fetch_add(1, std::memory_order_relaxed);
  EpochPtr Now = currentEpoch();
  Monitor.rebaseToModel(Now->Model);
  MonitorEpochId = Now->Id;
  Traffic.reset();
  return true;
}

serialize::LoadStatus AdaptiveService::swapModel(serialize::TrainedModel Next) {
  assert(Ok && "swapModel() on a non-ready AdaptiveService");
  // The same gate the constructor runs: a pushed model must fit the
  // bound program (feature declarations, landmark ranges, row bounds) or
  // serving it would index out of the program's space.
  serialize::LoadStatus Valid = serialize::validateAgainst(Next, Program);
  if (!Valid)
    return Valid;
  if (!Next.System.L2.Production || Next.System.L1.Landmarks.empty())
    return serialize::LoadStatus::failure(
        "pushed model has no production classifier or no landmarks");
  auto Ep = std::make_shared<ModelEpoch>();
  Ep->Model = std::move(Next);
  Ep->Model.System.Data.reset(); // training-only state; see constructor
  Ep->Compiled = CompiledModel::compile(Ep->Model);
  if (!Ep->Compiled.ready())
    return serialize::LoadStatus::failure("pushed model failed to compile");
  publish(std::move(Ep), nullptr);
  SwapCount.fetch_add(1, std::memory_order_relaxed);
  return serialize::LoadStatus::success();
}

void AdaptiveService::recordSkip(std::string Reason) {
  SkipCount.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(SwapMutex);
  LastSkipReason = std::move(Reason);
}

AdaptiveService::StatsSnapshot AdaptiveService::stats() const {
  StatsSnapshot S;
  S.Decisions = DecisionCount.load(std::memory_order_relaxed);
  S.MemoizedDecisions = MemoizedCount.load(std::memory_order_relaxed);
  S.FeaturesExtracted = ExtractedCount.load(std::memory_order_relaxed);
  S.FeatureCostPaid = CostPaid.load(std::memory_order_relaxed);
  S.MonitorCostPaid = MonitorCost.load(std::memory_order_relaxed);
  S.DriftDetections = DriftCount.load(std::memory_order_relaxed);
  S.Retrains = RetrainCount.load(std::memory_order_relaxed);
  S.Swaps = SwapCount.load(std::memory_order_relaxed);
  S.RejectedCandidates = RejectCount.load(std::memory_order_relaxed);
  S.SkippedRetrains = SkipCount.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(SwapMutex);
    S.LastSkipReason = LastSkipReason;
  }
  return S;
}

std::vector<AdaptiveService::SwapRecord> AdaptiveService::history() const {
  std::lock_guard<std::mutex> Lock(SwapMutex);
  return Swaps;
}

//===- runtime/SimdLanesSse42.cpp - SSE4.2 lane engine --------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
//
// The SSE4.2 lane engine: the shared kernels compiled with -msse4.2
// (see CMakeLists' per-source COMPILE_OPTIONS), width 4 = one 128-bit
// register pair per lane row. The anonymous namespace around the
// include keeps this instantiation from ODR-merging with the other
// tiers' TUs. Must only be executed when support::detectSimdTier()
// reports Sse42 or better.
//
//===----------------------------------------------------------------------===//

#include "runtime/SimdLanes.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace {
#define PBT_LANE_WIDTH 4
#include "runtime/SimdLanesKernels.inc"
} // namespace

namespace pbt {
namespace runtime {

const LaneEngine &laneEngineSse42() {
  static const LaneEngine Engine{support::SimdTier::Sse42, kW,
                                 &laneClassifyBlock};
  return Engine;
}

} // namespace runtime
} // namespace pbt

//===- runtime/Selector.h - Recursive algorithmic-choice selectors --------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selectors realise PetaBricks polyalgorithms (Figure 2 of the paper): at
/// every recursive invocation of an either...or choice site, a selector
/// maps the current problem size onto one of the available algorithms via
/// an ordered list of size cutoffs.
///
/// A SelectorScheme declares the tunable parameters a selector needs
/// (cutoffs and per-level choices) inside a ConfigSpace; a Selector is the
/// decoded, immutable decision rule for one Configuration. Example: the
/// decoded rule {(600, InsertionSort), (1420, QuickSort), (inf, MergeSort)}
/// is exactly the paper's Figure 2 polyalgorithm.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_SELECTOR_H
#define PBT_RUNTIME_SELECTOR_H

#include "runtime/ConfigSpace.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pbt {
namespace runtime {

/// Immutable decision rule: choice for the first level whose cutoff exceeds
/// the problem size; the last level has an implicit infinite cutoff.
class Selector {
public:
  struct Level {
    /// Problem sizes strictly below this cutoff take this level's choice.
    uint64_t Cutoff;
    unsigned Choice;
  };

  Selector() = default;
  explicit Selector(std::vector<Level> Levels) : Levels(std::move(Levels)) {
    // choose() binary-searches the cutoffs, so they must be ascending.
    // SelectorScheme::instantiate already sorts; this covers selectors
    // built directly from unordered level lists.
    //
    // Ties are ordered by Choice: levels sharing a cutoff are a redundant
    // encoding (only the first of the tied run is ever reachable from
    // choose()), and sorting on (Cutoff, Choice) pins which one that is.
    // A cutoff-only stable sort would instead let the *construction order*
    // of the level list decide the winner, so two logically identical
    // selectors built from permuted lists could choose differently --
    // pinned by SelectorTest.TiedCutoffsAreConstructionOrderIndependent.
    std::sort(this->Levels.begin(), this->Levels.end(),
              [](const Level &A, const Level &B) {
                if (A.Cutoff != B.Cutoff)
                  return A.Cutoff < B.Cutoff;
                return A.Choice < B.Choice;
              });
  }

  /// The algorithmic choice for problem size \p N: the first level whose
  /// cutoff exceeds N, found by binary search over the sorted cutoffs.
  unsigned choose(uint64_t N) const {
    auto It = std::upper_bound(
        Levels.begin(), Levels.end(), N,
        [](uint64_t Size, const Level &L) { return Size < L.Cutoff; });
    if (It != Levels.end())
      return It->Choice;
    // Declared levels always end with an infinite cutoff; an empty selector
    // defaults to choice 0.
    return Levels.empty() ? 0 : Levels.back().Choice;
  }

  const std::vector<Level> &levels() const { return Levels; }

  /// Human-readable form, e.g. "[n<600 -> 2][n<1420 -> 1][* -> 0]".
  std::string str() const;

private:
  std::vector<Level> Levels;
};

/// Declares the tunables for one selector inside a ConfigSpace and decodes
/// them from Configurations.
///
/// A scheme with L levels over C choices contributes L categorical choice
/// parameters and L-1 log-scaled integer cutoffs. Cutoffs as stored are
/// unordered; decoding sorts them, which keeps the search space free of
/// dead regions (every configuration decodes to a valid selector).
class SelectorScheme {
public:
  SelectorScheme() = default;

  /// Adds the selector parameters to \p Space. \p MinCutoff/\p MaxCutoff
  /// bound the size cutoffs; \p NumChoices is the either...or arity.
  static SelectorScheme declare(ConfigSpace &Space, const std::string &Name,
                                unsigned NumLevels, unsigned NumChoices,
                                uint64_t MinCutoff, uint64_t MaxCutoff);

  /// Decodes the selector encoded in \p Config.
  Selector instantiate(const Configuration &Config) const;

  unsigned numLevels() const { return NumLevels; }
  unsigned numChoices() const { return NumChoices; }

private:
  unsigned FirstChoiceParam = 0;
  unsigned FirstCutoffParam = 0;
  unsigned NumLevels = 0;
  unsigned NumChoices = 0;
};

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_SELECTOR_H

//===- runtime/AdaptiveService.h - Drift-adaptive model serving ------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online-adaptation loop on top of the compiled serving stack: an
/// AdaptiveService serves per-input configuration decisions from the
/// current CompiledModel epoch while watching the live traffic with a
/// DriftMonitor. When the monitor flags that inputs no longer look like
/// the training sample, the service retrains in the shadow -- the
/// two-level pipeline (core/Pipeline.h, parallelised by the usual
/// ThreadPool path) runs over a reservoir sample of recent traffic
/// wrapped in a runtime::SubsetProgram -- and the freshly trained
/// candidate is scored against the champion on that same traffic. Only a
/// candidate with strictly lower shadow cost is hot-swapped in; the swap
/// is an atomic epoch-pointer exchange, so serving never pauses and
/// decisions already handed out stay valid (each Decision holds its
/// epoch alive).
///
/// Model epochs are versioned: every swap bumps ModelMeta::Epoch, which
/// the v2 serialization format records, so a persisted snapshot of an
/// adapted model carries its adaptation generation. Cost accounting is
/// preserved across swaps -- lifetime totals keep accumulating, and the
/// swap history records the shadow scores that justified (or rejected)
/// each candidate.
///
/// Threading contract: decide()/decideBatch()/serve() are driven by one
/// serving thread (decideBatch may internally shard across a pool, as
/// PredictionService does); swapModel() may be called concurrently from
/// any other thread. A batch reads the epoch pointer exactly once, so
/// every decision inside one batch comes from the same epoch.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_RUNTIME_ADAPTIVESERVICE_H
#define PBT_RUNTIME_ADAPTIVESERVICE_H

#include "core/Pipeline.h"
#include "ml/Reservoir.h"
#include "runtime/CompiledModel.h"
#include "runtime/DriftMonitor.h"
#include "serialize/ModelIO.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace pbt {
namespace runtime {

struct AdaptiveServiceOptions {
  DriftMonitorOptions Monitor;
  /// Recent-traffic sample the shadow retrain learns from.
  size_t ReservoirSize = 48;
  uint64_t ReservoirSeed = 0x5EED;
  /// Pipeline options template for shadow retraining. Landmark count, CV
  /// folds and tuning neighbourhood are clamped to what the reservoir can
  /// support; Pool defaults to the service pool below.
  core::PipelineOptions Retrain;
  /// A candidate is swapped in only when its shadow-scored mean cost is
  /// below champion * (1 - SwapMargin).
  double SwapMargin = 0.0;
  /// serve() reacts to a drift flag by retraining + maybe swapping. When
  /// false the caller drives adaptation via adaptNow().
  bool AutoAdapt = true;
  /// Fewest reservoir entries (and, /2, distinct inputs) worth retraining
  /// on; drift flags before that only rebase the monitor.
  size_t MinRetrainInputs = 16;
  /// Parallelises shadow retraining (and decideBatch when forwarded).
  support::ThreadPool *Pool = nullptr;
};

class AdaptiveService {
public:
  /// One published model generation. Id is a process-local monotonic
  /// counter (unique even across rejected candidates); the persisted
  /// adaptation generation is Model.Meta.Epoch.
  struct ModelEpoch {
    uint64_t Id = 0;
    serialize::TrainedModel Model;
    CompiledModel Compiled;
  };
  using EpochPtr = std::shared_ptr<const ModelEpoch>;

  struct Decision {
    unsigned Landmark = 0;
    /// Meta.Epoch of the model that decided (the versioned generation).
    uint64_t Epoch = 0;
    /// Points into Hold's model; valid while Hold (or the service at this
    /// epoch) lives.
    const Configuration *Config = nullptr;
    double FeatureCost = 0.0;
    unsigned FeaturesExtracted = 0;
    bool Memoized = false;
    /// The monitor flagged drift at this observation (serve() only).
    bool DriftFlagged = false;
    /// This observation's drift response ended in a hot swap.
    bool Swapped = false;
    EpochPtr Hold;
  };

  /// One adaptation attempt (accepted or rejected), in order.
  struct SwapRecord {
    uint64_t FromEpoch = 0; ///< Meta.Epoch serving when drift flagged.
    uint64_t ToEpoch = 0;   ///< Candidate's Meta.Epoch.
    uint64_t AtDecision = 0; ///< Lifetime decision count at the attempt.
    double ChampionShadowCost = 0.0;
    double CandidateShadowCost = 0.0;
    bool Accepted = false;
    /// Wall seconds of the shadow retrain (pipeline + compile).
    double RetrainSeconds = 0.0;
    /// Wall seconds of the champion + candidate shadow scoring.
    double ShadowSeconds = 0.0;
    /// Wall seconds from the drift response starting (the detection --
    /// serve() invokes the response synchronously at the flag) to the
    /// epoch swap publishing, i.e. how long live traffic was served by
    /// the stale champion. For rejected attempts: time to the verdict.
    double DriftToSwapSeconds = 0.0;
  };

  struct StatsSnapshot {
    uint64_t Decisions = 0;
    uint64_t MemoizedDecisions = 0;
    uint64_t FeaturesExtracted = 0;
    double FeatureCostPaid = 0.0;
    /// Extraction paid by the drift monitor's full-vector observation
    /// (kept apart from per-decision cost so serving accounting matches
    /// PredictionService).
    double MonitorCostPaid = 0.0;
    uint64_t DriftDetections = 0;
    uint64_t Retrains = 0;
    uint64_t Swaps = 0;
    uint64_t RejectedCandidates = 0;
    uint64_t SkippedRetrains = 0;
    /// Why the most recent drift response skipped retraining (empty when
    /// none ever skipped): the caught retrain exception's message, or the
    /// insufficient-evidence diagnosis. Without this, a tenant whose
    /// every adaptation silently dies in the catch-all is
    /// indistinguishable from one that never needed to adapt.
    std::string LastSkipReason;
  };

  /// Binds \p Program and publishes \p Initial as epoch 1. \p Program
  /// must outlive the service. status() reports a model/program mismatch;
  /// the service is not ready() then.
  AdaptiveService(const TunableProgram &Program,
                  serialize::TrainedModel Initial,
                  AdaptiveServiceOptions Options = {});

  bool ready() const { return Ok; }
  const serialize::LoadStatus &status() const { return Status; }

  /// Serve one request and feed the adaptation loop: decide, observe the
  /// input's features / cluster / decision into the DriftMonitor and the
  /// reservoir, and (under AutoAdapt) run the drift response when
  /// flagged. Single serving thread.
  Decision serve(size_t Input);

  /// Decide without observing: no monitor, no reservoir, no adaptation.
  Decision decide(size_t Input);

  /// Batched decide (no observation), sharded by input id exactly like
  /// PredictionService::decideBatch: decisions are identical for every
  /// thread count, and the whole batch is served by one epoch snapshot.
  std::vector<Decision> decideBatch(const std::vector<size_t> &Inputs,
                                    support::ThreadPool *Pool = nullptr);

  /// Runs the drift response now: retrain on the reservoir, shadow-score
  /// candidate vs champion on the same traffic, swap when strictly
  /// better. Returns true when a swap happened.
  bool adaptNow();

  /// Publishes \p Next as the new serving epoch without the shadow gate
  /// (operator-pushed models, stress tests). The model is validated
  /// against the bound program first; on failure nothing is published
  /// and the error is returned. Safe to call from a thread other than
  /// the serving thread; the serving thread rebases its DriftMonitor to
  /// the pushed model on its next serve().
  serialize::LoadStatus swapModel(serialize::TrainedModel Next);

  /// Snapshot of the current epoch (never null once ready()).
  EpochPtr currentEpoch() const;
  /// Current versioned generation (Meta.Epoch).
  uint64_t epoch() const;
  const TunableProgram &program() const { return Program; }

  StatsSnapshot stats() const;
  std::vector<SwapRecord> history() const;
  const DriftMonitor &monitor() const { return Monitor; }
  const ml::Reservoir &reservoir() const { return Traffic; }
  const AdaptiveServiceOptions &options() const { return Opts; }

  /// Drops memoized features and cached decisions.
  void clearMemo();

  /// Clamps a pipeline-options template to what a traffic sample of
  /// \p SampleSize inputs can support (landmark count, CV folds, tuning
  /// neighbourhood). Used before every shadow retrain; exposed so
  /// harnesses can build consistent initial-model options (see
  /// registry::reservoirRetrainOptions).
  static void clampRetrainOptions(core::PipelineOptions &Opt,
                                  size_t SampleSize);

private:
  struct MemoEntry {
    std::vector<double> Values;
    std::vector<char> Have;
    /// Cached production decision and the internal epoch Id it belongs
    /// to; a swap invalidates it by Id mismatch, not by touching memory.
    int64_t DecidedEpochId = -1;
    int32_t Decided = -1;
  };

  Decision decideWith(const ModelEpoch &Ep, size_t Input,
                      CompiledModel::Scratch &S);
  /// Memo-backed feature access: extracts flat feature \p Flat of
  /// \p Input unless already memoized. Newly paid extraction is charged
  /// to \p D when given, else to the MonitorCost bucket.
  double featureAt(size_t Input, unsigned Flat, Decision *D);
  /// Extracts (via the memo) every flat feature of \p Input; returns the
  /// memo row. Extraction newly paid here is charged to MonitorCost.
  const double *fullFeatures(size_t Input);
  /// MainScratch sized for \p Ep (epochs differ in class counts); the
  /// serving-thread counterpart of decideBatch's per-shard scratches.
  CompiledModel::Scratch &scratchFor(const ModelEpoch &Ep);
  /// Serving-thread monitor upkeep: when \p Ep is not the epoch the
  /// monitor was rebased to (an external swapModel() landed), rebase to
  /// it before observing.
  void syncMonitorTo(const EpochPtr &Ep);
  unsigned assignCluster(const ModelEpoch &Ep, const double *Features);
  /// Mean run cost of serving \p Inputs with \p Ep's decisions (runs the
  /// program; the shadow evaluation).
  double shadowScore(const ModelEpoch &Ep, const std::vector<size_t> &Inputs);
  void publish(std::shared_ptr<ModelEpoch> Next, SwapRecord *Attempt);
  void recordTotals(const Decision &D);

  const TunableProgram &Program;
  AdaptiveServiceOptions Opts;
  serialize::LoadStatus Status;
  bool Ok = false;

  /// The atomically swapped serving state. Readers snapshot with
  /// std::atomic_load; publishers serialize on SwapMutex.
  /// Bumps SkipCount and records \p Reason as the last skip diagnosis.
  void recordSkip(std::string Reason);

  EpochPtr Current;
  std::atomic<uint64_t> EpochCounter{0};
  mutable std::mutex SwapMutex;
  std::vector<SwapRecord> Swaps;   // guarded by SwapMutex
  std::string LastSkipReason;      // guarded by SwapMutex

  std::optional<FeatureIndex> Index;
  std::vector<MemoEntry> Memo;
  CompiledModel::Scratch MainScratch;
  /// Internal epoch Id MainScratch was sized for (0 = never made).
  uint64_t ScratchEpochId = 0;
  std::vector<double> ClusterRow; // scratch for assignCluster

  DriftMonitor Monitor;
  /// Internal epoch Id the monitor's reference was rebased to.
  uint64_t MonitorEpochId = 0;
  ml::Reservoir Traffic;
  /// Reservoir sample buffer, reused across retrain rounds.
  std::vector<size_t> SampleBuf;

  // Lifetime accounting; atomics because swapModel() updates SwapCount
  // from a foreign thread while the serving thread reads/writes the rest.
  std::atomic<uint64_t> DecisionCount{0}, MemoizedCount{0}, ExtractedCount{0},
      DriftCount{0}, RetrainCount{0}, SwapCount{0}, RejectCount{0},
      SkipCount{0};
  std::atomic<double> CostPaid{0.0}, MonitorCost{0.0};
};

} // namespace runtime
} // namespace pbt

#endif // PBT_RUNTIME_ADAPTIVESERVICE_H

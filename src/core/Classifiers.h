//===- core/Classifiers.h - Production input classifiers --------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The candidate production classifiers of the paper's Level 2 (Section
/// 3.2): (1) max-a-priori, (2) decision trees over exhaustive per-property
/// feature subsets -- of which (3) the all-features classifier is one --
/// and (4) the incremental feature-examination classifier. All share the
/// InputClassifier interface: classify one input through a FeatureProbe,
/// paying extraction cost only for features actually examined.
///
/// The traditional one-level baseline (nearest centroid in normalized raw
/// feature space, all features extracted) implements the same interface,
/// so the evaluation harness treats every method uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_CORE_CLASSIFIERS_H
#define PBT_CORE_CLASSIFIERS_H

#include "core/FeatureProbe.h"
#include "ml/CompiledArena.h"
#include "ml/DecisionTree.h"
#include "ml/IncrementalBayes.h"
#include "ml/KMeans.h"
#include "ml/MaxApriori.h"
#include "ml/Normalizer.h"

#include <memory>
#include <string>
#include <vector>

namespace pbt {
namespace core {

/// A trained classifier mapping an input (via its feature probe) to a
/// landmark configuration index.
class InputClassifier {
public:
  virtual ~InputClassifier();

  /// Predicts the landmark for one input. Feature extraction goes through
  /// \p Probe so the caller can account for its cost.
  virtual unsigned classify(FeatureProbe &Probe) const = 0;

  /// Flat features this classifier may reference (upper bound; the probe
  /// reports what was actually extracted per input).
  virtual std::vector<unsigned> referencedFeatures() const = 0;

  /// Human-readable description for reports.
  virtual std::string describe() const = 0;

  /// Lowers this classifier into the pointer-free arena form served by
  /// runtime::CompiledModel. Decisions over the lowered form must be
  /// bit-identical to classify() given the same feature values.
  virtual void compileInto(ml::CompiledArena &A,
                           ml::CompiledClassifier &Out) const = 0;
};

/// (0) Constant: always predicts one fixed landmark, extracting no
/// features. Instantiated with the static-oracle landmark it is the
/// "no input adaptation" member of the zoo, guaranteeing a valid
/// candidate exists whenever the static oracle meets the satisfaction
/// threshold.
class ConstantClassifier : public InputClassifier {
public:
  explicit ConstantClassifier(unsigned Landmark) : Landmark(Landmark) {}

  unsigned classify(FeatureProbe &) const override { return Landmark; }
  std::vector<unsigned> referencedFeatures() const override { return {}; }
  std::string describe() const override { return "static-best"; }
  void compileInto(ml::CompiledArena &,
                   ml::CompiledClassifier &Out) const override {
    Out.Kind = ml::CompiledKind::Constant;
    Out.Landmark = Landmark;
  }

  unsigned landmark() const { return Landmark; }

private:
  unsigned Landmark;
};

/// (1) Max-a-priori: predicts the modal training label, extracting no
/// features at all.
class MaxAprioriClassifier : public InputClassifier {
public:
  explicit MaxAprioriClassifier(ml::MaxApriori Model) : Model(std::move(Model)) {}

  unsigned classify(FeatureProbe &) const override { return Model.predict(); }
  std::vector<unsigned> referencedFeatures() const override { return {}; }
  std::string describe() const override { return "max-apriori"; }
  void compileInto(ml::CompiledArena &A,
                   ml::CompiledClassifier &Out) const override {
    Model.compileInto(A, Out);
  }

  const ml::MaxApriori &model() const { return Model; }

private:
  ml::MaxApriori Model;
};

/// (2)/(3) Decision tree over a feature subset (one sampling level per
/// property, or the property absent). Prediction extracts only the
/// features on the root-to-leaf path.
class SubsetTreeClassifier : public InputClassifier {
public:
  SubsetTreeClassifier(ml::DecisionTree Tree, std::vector<unsigned> Subset,
                       std::string Name)
      : Tree(std::move(Tree)), Subset(std::move(Subset)),
        Name(std::move(Name)) {}

  unsigned classify(FeatureProbe &Probe) const override {
    return Tree.predictLazy([&Probe](unsigned F) { return Probe.value(F); });
  }
  std::vector<unsigned> referencedFeatures() const override { return Subset; }
  std::string describe() const override { return Name; }
  void compileInto(ml::CompiledArena &A,
                   ml::CompiledClassifier &Out) const override {
    Tree.compileInto(A, Out);
  }

  const ml::DecisionTree &tree() const { return Tree; }
  const std::vector<unsigned> &subset() const { return Subset; }

private:
  ml::DecisionTree Tree;
  std::vector<unsigned> Subset;
  std::string Name;
};

/// (4) Incremental feature examination: acquires features cheapest-first
/// until the class posterior clears a threshold.
class IncrementalClassifier : public InputClassifier {
public:
  IncrementalClassifier(ml::IncrementalBayes Model, std::string Name)
      : Model(std::move(Model)), Name(std::move(Name)) {}

  unsigned classify(FeatureProbe &Probe) const override {
    return Model
        .predictLazy([&Probe](unsigned F) { return Probe.value(F); })
        .Label;
  }
  std::vector<unsigned> referencedFeatures() const override {
    return Model.featureOrder();
  }
  std::string describe() const override { return Name; }
  void compileInto(ml::CompiledArena &A,
                   ml::CompiledClassifier &Out) const override {
    Model.compileInto(A, Out);
  }

  const ml::IncrementalBayes &model() const { return Model; }

private:
  ml::IncrementalBayes Model;
  std::string Name;
};

/// The one-level baseline: nearest K-means centroid in normalized feature
/// space; extracts every feature unconditionally (no cost awareness, no
/// accuracy awareness), exactly the traditional approach the paper
/// compares against.
class OneLevelClassifier : public InputClassifier {
public:
  /// \p ClusterLandmark maps each centroid to its landmark index.
  OneLevelClassifier(linalg::Matrix Centroids, ml::Normalizer Norm,
                     std::vector<unsigned> ClusterLandmark)
      : Centroids(std::move(Centroids)), Norm(std::move(Norm)),
        ClusterLandmark(std::move(ClusterLandmark)) {}

  unsigned classify(FeatureProbe &Probe) const override {
    std::vector<double> Row(Probe.numFlat());
    for (unsigned F = 0; F != Probe.numFlat(); ++F)
      Row[F] = Probe.value(F);
    Norm.transformRow(Row);
    unsigned C = ml::nearestCentroid(Centroids, Row);
    return ClusterLandmark[C];
  }
  std::vector<unsigned> referencedFeatures() const override {
    std::vector<unsigned> All(Centroids.cols());
    for (unsigned F = 0; F != All.size(); ++F)
      All[F] = F;
    return All;
  }
  std::string describe() const override { return "one-level"; }
  void compileInto(ml::CompiledArena &A,
                   ml::CompiledClassifier &Out) const override;

  const linalg::Matrix &centroids() const { return Centroids; }
  const ml::Normalizer &norm() const { return Norm; }
  const std::vector<unsigned> &clusterLandmark() const {
    return ClusterLandmark;
  }

private:
  linalg::Matrix Centroids;
  ml::Normalizer Norm;
  std::vector<unsigned> ClusterLandmark;
};

} // namespace core
} // namespace pbt

#endif // PBT_CORE_CLASSIFIERS_H

//===- core/LevelTwo.h - Level 2: refinement, zoo, selection ----------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Level 2 of the two-level learning framework (paper Section 3.2):
///
///   * Cluster refinement: re-label every training input with its best
///     landmark (measured, accuracy-aware) -- the second-level clustering.
///   * Cost matrix: C(i,j) = eta * Ca(i,j) * max_t Cp(i,t) + Cp(i,j),
///     blending the mean performance difference Cp with the accuracy
///     violation ratio Ca (eta = 0.5 by default, the paper's setting).
///   * Classifier zoo: max-a-priori; one decision tree per feature subset
///     (each property absent or at exactly one sampling level -- (z+1)^u
///     subsets, 256 for four 3-level properties, including all-features);
///     and incremental feature-examination classifiers (over all features
///     and over the best subset, cheapest-first).
///   * Candidate selection: cross-validated measured objective
///     R = mean(execution time + feature extraction time), subject to the
///     satisfaction threshold; the best valid candidate is retrained on
///     the full training set as the production classifier.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_CORE_LEVELTWO_H
#define PBT_CORE_LEVELTWO_H

#include "core/Classifiers.h"
#include "core/LevelOne.h"
#include "ml/CostMatrix.h"
#include "ml/Dataset.h"
#include "ml/IncrementalBayes.h"

#include <memory>
#include <string>
#include <vector>

namespace pbt {
namespace core {

struct LevelTwoOptions {
  /// Blend factor between accuracy penalty and performance penalty in the
  /// cost matrix (the paper tried 0.001..1 and settled on 0.5).
  double Eta = 0.5;
  unsigned CVFolds = 5;
  uint64_t Seed = 43;
  /// Candidate-selection safety margin: a candidate only counts as valid
  /// when its cross-validated satisfaction clears the threshold by this
  /// much, guarding against valid-in-CV-but-invalid-in-production picks
  /// on small training sets.
  double SelectionMargin = 0.0;
  ml::DecisionTreeOptions Tree;
  ml::IncrementalBayesOptions Bayes;
  /// Optional pool parallelising the classifier zoo's cross-validated
  /// subset-tree sweep ((z+1)^u - 1 candidates). Results are identical
  /// with or without it.
  support::ThreadPool *Pool = nullptr;
  /// Run the zoo over the columnar ml::Dataset substrate: presorted tree
  /// fits, direct-column candidate scoring, a per-fold fitted-tree
  /// evaluation cache, and chunked fold x subset parallelism. Produces
  /// bit-identical results to the row-major path (pinned by LevelTwoTest
  /// parity and the golden retrain suite); disabled by the `pbt-bench
  /// trainbench` pre-optimisation baseline.
  bool UseDataset = true;
};

/// Cross-validated evaluation of one candidate classifier.
struct CandidateScore {
  std::string Name;
  /// Mean(T(i, pred) + extraction cost actually paid) on held-out rows.
  double Objective = 0.0;
  /// Same without extraction cost.
  double ObjectiveNoFeat = 0.0;
  /// Fraction of held-out rows whose accuracy met the threshold.
  double Satisfaction = 1.0;
  bool Valid = true;
};

struct LevelTwoResult {
  /// Refined labels of the training rows (parallel to TrainRows).
  std::vector<unsigned> TrainLabels;
  ml::CostMatrix Costs;
  /// The selected production classifier (retrained on all training rows).
  std::unique_ptr<InputClassifier> Production;
  /// Scores of every zoo candidate, selection order preserved.
  std::vector<CandidateScore> Candidates;
  std::string SelectedName;
  /// Fraction of training inputs whose refined label differs from their
  /// Level-1 cluster's landmark (the paper reports 73.4% for kmeans).
  double RefinementMoveFraction = 0.0;
};

/// Builds the paper's cost matrix from measured evidence. \p Labels are
/// parallel to \p Rows.
ml::CostMatrix buildCostMatrix(const linalg::Matrix &Time,
                               const linalg::Matrix &Acc,
                               const std::vector<size_t> &Rows,
                               const std::vector<unsigned> &Labels,
                               unsigned NumLandmarks,
                               const std::optional<runtime::AccuracySpec> &Spec,
                               double Eta);

/// Enumerates the (z+1)^u - 1 non-empty per-property feature subsets.
std::vector<std::vector<unsigned>>
enumerateFeatureSubsets(const runtime::FeatureIndex &Index);

/// Runs Level 2 on top of a Level 1 result. \p Data, when given, is the
/// columnar substrate extracted once by the pipeline (its label column
/// must be attached); when null and Options.UseDataset is set, a local
/// Dataset is columnarized from the L1 tables.
LevelTwoResult runLevelTwo(const runtime::TunableProgram &Program,
                           const LevelOneResult &L1,
                           const std::vector<size_t> &TrainRows,
                           const LevelTwoOptions &Options,
                           const ml::Dataset *Data = nullptr);

} // namespace core
} // namespace pbt

#endif // PBT_CORE_LEVELTWO_H

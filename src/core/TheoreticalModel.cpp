//===- core/TheoreticalModel.cpp ---------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/TheoreticalModel.h"

#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::core;

double core::expectedSpeedupLoss(const std::vector<double> &RegionSizes,
                                 const std::vector<double> &RegionSpeedups,
                                 unsigned K) {
  assert(RegionSizes.size() == RegionSpeedups.size() &&
         "sizes/speedups mismatch");
  double Numerator = 0.0, Denominator = 0.0;
  for (size_t I = 0; I != RegionSizes.size(); ++I) {
    double P = RegionSizes[I];
    double S = RegionSpeedups[I];
    assert(P >= 0.0 && P <= 1.0 && "region size must be a fraction");
    Numerator += std::pow(1.0 - P, static_cast<double>(K)) * P * S;
    Denominator += S;
  }
  return Denominator > 0.0 ? Numerator / Denominator : 0.0;
}

double core::regionLossContribution(double P, unsigned K) {
  assert(P >= 0.0 && P <= 1.0 && "region size must be a fraction");
  return std::pow(1.0 - P, static_cast<double>(K)) * P;
}

double core::worstCaseRegionSize(unsigned K) {
  return 1.0 / (static_cast<double>(K) + 1.0);
}

double core::predictedSpeedupFraction(unsigned K) {
  // Tile the input space with m = k+1 regions of the worst-case size
  // p* = 1/(k+1) and equal speedups. The expected fraction of speedup
  // captured is 1 - (1 - p*)^k.
  double P = worstCaseRegionSize(K);
  return 1.0 - std::pow(1.0 - P, static_cast<double>(K));
}

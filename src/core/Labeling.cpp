//===- core/Labeling.cpp -----------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/Labeling.h"

#include <cassert>

using namespace pbt;
using namespace pbt::core;

unsigned core::bestLandmark(const linalg::Matrix &Time,
                            const linalg::Matrix &Acc, size_t Row,
                            const std::optional<runtime::AccuracySpec> &Spec) {
  std::vector<unsigned> All(Time.cols());
  for (size_t K = 0; K != Time.cols(); ++K)
    All[K] = static_cast<unsigned>(K);
  return bestLandmarkWithin(Time, Acc, Row, All, Spec);
}

unsigned
core::bestLandmarkWithin(const linalg::Matrix &Time, const linalg::Matrix &Acc,
                         size_t Row, const std::vector<unsigned> &Allowed,
                         const std::optional<runtime::AccuracySpec> &Spec) {
  assert(!Allowed.empty() && "need at least one landmark");
  assert(Row < Time.rows() && "row out of range");

  if (!Spec) {
    // Time-only: argmin time.
    unsigned Best = Allowed[0];
    for (unsigned K : Allowed)
      if (Time.at(Row, K) < Time.at(Row, Best))
        Best = K;
    return Best;
  }

  // Variable accuracy: fastest among landmarks meeting the threshold.
  bool AnyMeets = false;
  unsigned BestMeeting = Allowed[0];
  unsigned MostAccurate = Allowed[0];
  for (unsigned K : Allowed) {
    bool Meets = Acc.at(Row, K) >= Spec->AccuracyThreshold;
    if (Meets && (!AnyMeets || Time.at(Row, K) < Time.at(Row, BestMeeting))) {
      BestMeeting = K;
      AnyMeets = true;
    }
    if (Acc.at(Row, K) > Acc.at(Row, MostAccurate) ||
        (Acc.at(Row, K) == Acc.at(Row, MostAccurate) &&
         Time.at(Row, K) < Time.at(Row, MostAccurate)))
      MostAccurate = K;
  }
  return AnyMeets ? BestMeeting : MostAccurate;
}

std::vector<unsigned>
core::labelRows(const linalg::Matrix &Time, const linalg::Matrix &Acc,
                const std::vector<size_t> &Rows,
                const std::optional<runtime::AccuracySpec> &Spec) {
  std::vector<unsigned> Labels;
  Labels.reserve(Rows.size());
  for (size_t Row : Rows)
    Labels.push_back(bestLandmark(Time, Acc, Row, Spec));
  return Labels;
}

std::vector<unsigned>
core::labelAllRows(const linalg::Matrix &Time, const linalg::Matrix &Acc,
                   const std::optional<runtime::AccuracySpec> &Spec) {
  std::vector<unsigned> Labels;
  Labels.reserve(Time.rows());
  for (size_t Row = 0; Row != Time.rows(); ++Row)
    Labels.push_back(bestLandmark(Time, Acc, Row, Spec));
  return Labels;
}

double
core::satisfactionOf(const linalg::Matrix &Acc, const std::vector<size_t> &Rows,
                     unsigned Landmark,
                     const std::optional<runtime::AccuracySpec> &Spec) {
  if (!Spec || Rows.empty())
    return 1.0;
  size_t Meets = 0;
  for (size_t Row : Rows)
    if (Acc.at(Row, Landmark) >= Spec->AccuracyThreshold)
      ++Meets;
  return static_cast<double>(Meets) / static_cast<double>(Rows.size());
}

unsigned
core::selectStaticOracle(const linalg::Matrix &Time, const linalg::Matrix &Acc,
                         const std::vector<size_t> &Rows,
                         const std::optional<runtime::AccuracySpec> &Spec) {
  assert(Time.cols() >= 1 && "need at least one landmark");
  size_t K = Time.cols();

  auto TotalTime = [&](unsigned Landmark) {
    double Sum = 0.0;
    for (size_t Row : Rows)
      Sum += Time.at(Row, Landmark);
    return Sum;
  };

  // Partition landmarks by whether they meet the satisfaction threshold.
  unsigned BestQualified = 0;
  double BestQualifiedTime = 0.0;
  bool AnyQualified = false;
  unsigned BestFallback = 0;
  double BestFallbackSat = -1.0;
  double BestFallbackTime = 0.0;

  for (unsigned L = 0; L != K; ++L) {
    double Sat = satisfactionOf(Acc, Rows, L, Spec);
    double T = TotalTime(L);
    bool Qualified = !Spec || Sat >= Spec->SatisfactionThreshold;
    if (Qualified && (!AnyQualified || T < BestQualifiedTime)) {
      BestQualified = L;
      BestQualifiedTime = T;
      AnyQualified = true;
    }
    if (Sat > BestFallbackSat ||
        (Sat == BestFallbackSat && T < BestFallbackTime)) {
      BestFallback = L;
      BestFallbackSat = Sat;
      BestFallbackTime = T;
    }
  }
  return AnyQualified ? BestQualified : BestFallback;
}

//===- core/LevelOne.cpp -----------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/LevelOne.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

using namespace pbt;
using namespace pbt::core;

void core::extractAllFeatures(const runtime::TunableProgram &Program,
                              linalg::Matrix &Values, linalg::Matrix &Costs,
                              support::ThreadPool *Pool) {
  runtime::FeatureIndex Index(Program.features());
  size_t N = Program.numInputs();
  unsigned M = Index.numFlat();
  Values = linalg::Matrix(N, M);
  Costs = linalg::Matrix(N, M);

  auto ExtractRow = [&](size_t I) {
    for (unsigned F = 0; F != M; ++F) {
      support::CostCounter C;
      Values.at(I, F) = Program.extractFeature(I, Index.propertyOf(F),
                                               Index.levelOf(F), C);
      Costs.at(I, F) = C.units();
    }
  };
  if (Pool)
    Pool->parallelFor(0, N, ExtractRow);
  else
    for (size_t I = 0; I != N; ++I)
      ExtractRow(I);
}

LevelOneResult core::runLevelOne(const runtime::TunableProgram &Program,
                                 const std::vector<size_t> &TrainRows,
                                 const LevelOneOptions &Options) {
  assert(!TrainRows.empty() && "no training inputs");
  LevelOneResult R;

  // Step 1: feature extraction (all inputs; Level 2 and evaluation share
  // the same tables).
  extractAllFeatures(Program, R.Features, R.ExtractCosts, Options.Pool);

  // Step 2: normalize (fit on training rows only) and cluster.
  linalg::Matrix TrainF(TrainRows.size(), R.Features.cols());
  for (size_t I = 0; I != TrainRows.size(); ++I)
    for (size_t J = 0; J != R.Features.cols(); ++J)
      TrainF.at(I, J) = R.Features.at(TrainRows[I], J);
  R.Norm.fit(TrainF);
  linalg::Matrix TrainNorm = R.Norm.transform(TrainF);

  ml::KMeansOptions KOpts;
  KOpts.K = std::max(1u, std::min<unsigned>(
                             Options.NumLandmarks,
                             static_cast<unsigned>(TrainRows.size())));
  KOpts.MaxIterations = 60;
  KOpts.Init = ml::KMeansInit::CenterPlus;
  KOpts.Seed = Options.Seed;
  R.Clusters = ml::kMeans(TrainNorm, KOpts, nullptr);
  unsigned K = static_cast<unsigned>(R.Clusters.Centroids.rows());

  // Step 3: landmark creation. Each cluster tunes on the neighbourhood of
  // training inputs nearest its centroid ("use the centroid as the
  // presumed input"), or on uniformly random training inputs for the
  // ablation baseline.
  unsigned Hood = std::max(1u, Options.TuningNeighborhood);
  R.Representatives.assign(K, TrainRows[0]);
  std::vector<std::vector<size_t>> TuningSets(K);
  if (Options.Selection == LandmarkSelection::UniformRandom) {
    support::Rng PickRng(Options.Seed ^ 0x5151);
    std::vector<size_t> Picks =
        PickRng.sampleWithoutReplacement(TrainRows.size(), K);
    for (unsigned C = 0; C != K; ++C) {
      R.Representatives[C] = TrainRows[Picks[C]];
      TuningSets[C] = {TrainRows[Picks[C]]};
    }
  } else {
    // Distance of every training row to its centroid.
    auto Dist2 = [&](size_t Pos, unsigned C) {
      double Sum = 0.0;
      for (size_t J = 0; J != TrainNorm.cols(); ++J) {
        double Delta = TrainNorm.at(Pos, J) - R.Clusters.Centroids.at(C, J);
        Sum += Delta * Delta;
      }
      return Sum;
    };
    // Collect cluster members sorted by centroid distance; the nearest is
    // the representative, the nearest Hood form the tuning set.
    std::vector<std::vector<std::pair<double, size_t>>> Members(K);
    for (size_t I = 0; I != TrainRows.size(); ++I) {
      unsigned C = R.Clusters.Assignment[I];
      Members[C].push_back({Dist2(I, C), TrainRows[I]});
    }
    for (unsigned C = 0; C != K; ++C) {
      std::sort(Members[C].begin(), Members[C].end());
      if (Members[C].empty()) {
        // Empty cluster (possible after re-seeding): fall back to the
        // first training row.
        R.Representatives[C] = TrainRows[0];
        TuningSets[C] = {TrainRows[0]};
        continue;
      }
      R.Representatives[C] = Members[C].front().second;
      for (size_t I = 0; I != Members[C].size() && I != Hood; ++I)
        TuningSets[C].push_back(Members[C][I].second);
    }
  }

  R.Landmarks.assign(K, runtime::Configuration());
  auto TuneOne = [&](size_t C) {
    autotuner::AutotunerOptions TOpts = Options.Tuner;
    TOpts.Seed = Options.Seed * 7919 + C; // independent stream per cluster
    // Landmark tuning parallelises over clusters; the inner evaluation
    // loop stays sequential to avoid nested parallelism.
    TOpts.Pool = nullptr;
    autotuner::EvolutionaryAutotuner Tuner(TOpts);
    R.Landmarks[C] = Tuner.tune(Program, TuningSets[C]).Best;
  };
  if (Options.Pool)
    Options.Pool->parallelFor(0, K, TuneOne);
  else
    for (unsigned C = 0; C != K; ++C)
      TuneOne(C);

  // Step 4: performance measurement -- every landmark on every input,
  // with each *distinct* configuration measured once per input and its
  // column copied to duplicate landmarks (runs are deterministic, so the
  // duplicates' sweeps would repeat bit-identically).
  size_t N = Program.numInputs();
  R.Time = linalg::Matrix(N, K);
  R.Acc = linalg::Matrix(N, K);
  std::vector<unsigned> MeasureAs(K);
  for (unsigned L = 0; L != K; ++L)
    MeasureAs[L] = L;
  if (Options.DedupMeasurementSweep) {
    std::map<std::vector<double>, unsigned> Seen;
    for (unsigned L = 0; L != K; ++L)
      MeasureAs[L] =
          Seen.emplace(R.Landmarks[L].values(), L).first->second;
  }
  auto MeasureRow = [&](size_t I) {
    for (unsigned L = 0; L != K; ++L) {
      if (MeasureAs[L] != L)
        continue;
      support::CostCounter C;
      runtime::RunResult Res = Program.run(I, R.Landmarks[L], C);
      R.Time.at(I, L) = Res.TimeUnits;
      R.Acc.at(I, L) = Res.Accuracy;
    }
    for (unsigned L = 0; L != K; ++L)
      if (MeasureAs[L] != L) {
        R.Time.at(I, L) = R.Time.at(I, MeasureAs[L]);
        R.Acc.at(I, L) = R.Acc.at(I, MeasureAs[L]);
      }
  };
  if (Options.Pool)
    Options.Pool->parallelFor(0, N, MeasureRow);
  else
    for (size_t I = 0; I != N; ++I)
      MeasureRow(I);

  return R;
}

//===- core/FeatureProbe.h - Lazy per-input feature access ------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FeatureProbe mediates between a production classifier and the input it
/// is classifying: the classifier asks for flat feature values on demand;
/// the probe extracts each at most once and accumulates the extraction
/// cost actually paid. Probes can be backed by a live program input (for
/// deployment and the examples) or by a precomputed feature table row
/// (for the training/evaluation pipeline, where every feature of every
/// input has already been measured once).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_CORE_FEATUREPROBE_H
#define PBT_CORE_FEATUREPROBE_H

#include "linalg/Matrix.h"
#include "runtime/TunableProgram.h"

#include <functional>
#include <vector>

namespace pbt {
namespace core {

/// On-demand, cached extraction of flat ML features for one input.
class FeatureProbe {
public:
  /// \p Extract(Flat) returns {value, extraction cost} of one flat feature.
  using Extractor = std::function<std::pair<double, double>(unsigned)>;

  FeatureProbe(unsigned NumFlat, Extractor Extract)
      : Extract(std::move(Extract)), Cached(NumFlat, false),
        Values(NumFlat, 0.0) {}

  /// Value of flat feature \p Flat; extraction cost is charged exactly
  /// once per feature.
  double value(unsigned Flat) {
    assert(Flat < Values.size() && "flat feature out of range");
    if (!Cached[Flat]) {
      auto [V, C] = Extract(Flat);
      Values[Flat] = V;
      TotalCost += C;
      Cached[Flat] = true;
      ++NumExtracted;
    }
    return Values[Flat];
  }

  /// Total extraction cost paid so far.
  double totalCost() const { return TotalCost; }
  unsigned numExtracted() const { return NumExtracted; }
  unsigned numFlat() const { return static_cast<unsigned>(Values.size()); }

private:
  Extractor Extract;
  std::vector<bool> Cached;
  std::vector<double> Values;
  double TotalCost = 0.0;
  unsigned NumExtracted = 0;
};

/// Probe backed by a live program input: extraction calls the program's
/// input_feature functions.
FeatureProbe probeFromProgram(const runtime::TunableProgram &Program,
                              size_t Input,
                              const runtime::FeatureIndex &Index);

/// Probe backed by row \p Row of precomputed feature/cost tables.
FeatureProbe probeFromTable(const linalg::Matrix &Values,
                            const linalg::Matrix &Costs, size_t Row);

} // namespace core
} // namespace pbt

#endif // PBT_CORE_FEATUREPROBE_H

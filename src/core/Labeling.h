//===- core/Labeling.h - Accuracy-aware best-landmark labelling -------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's labelling rule (Section 3.2, "Cluster Refinement before
/// Classifier Learning"): each input's label is its best landmark
/// configuration -- argmin time for time-only problems; for variable-
/// accuracy problems, the fastest landmark among those meeting the
/// accuracy threshold, falling back to the most accurate landmark when
/// none meets it. Re-grouping training inputs by these labels is the
/// second-level clustering that closes the mapping-disparity gap.
///
/// The same rule drives the dynamic oracle, so both live here, together
/// with the static-oracle selection and satisfaction computations.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_CORE_LABELING_H
#define PBT_CORE_LABELING_H

#include "linalg/Matrix.h"
#include "runtime/TunableProgram.h"

#include <optional>
#include <vector>

namespace pbt {
namespace core {

/// Best landmark for table row \p Row given the measured time matrix
/// \p Time (rows x landmarks) and accuracy matrix \p Acc.
unsigned bestLandmark(const linalg::Matrix &Time, const linalg::Matrix &Acc,
                      size_t Row,
                      const std::optional<runtime::AccuracySpec> &Spec);

/// Labels for each row in \p Rows (indices into the tables).
std::vector<unsigned>
labelRows(const linalg::Matrix &Time, const linalg::Matrix &Acc,
          const std::vector<size_t> &Rows,
          const std::optional<runtime::AccuracySpec> &Spec);

/// Labels for *every* table row: the ml::Dataset label column. Computed
/// once per training run and then shared by the Level-2 refinement, the
/// dynamic oracle, and evaluation (all of which would otherwise re-derive
/// the same rule row by row).
std::vector<unsigned>
labelAllRows(const linalg::Matrix &Time, const linalg::Matrix &Acc,
             const std::optional<runtime::AccuracySpec> &Spec);

/// Fraction of \p Rows whose accuracy under landmark \p Landmark meets the
/// threshold. Returns 1.0 for exact programs.
double satisfactionOf(const linalg::Matrix &Acc,
                      const std::vector<size_t> &Rows, unsigned Landmark,
                      const std::optional<runtime::AccuracySpec> &Spec);

/// The static oracle (paper Section 4): the single landmark with the best
/// total time over \p Rows among landmarks meeting the satisfaction
/// threshold; if none qualifies, the landmark with the highest
/// satisfaction (ties broken by time).
unsigned selectStaticOracle(const linalg::Matrix &Time,
                            const linalg::Matrix &Acc,
                            const std::vector<size_t> &Rows,
                            const std::optional<runtime::AccuracySpec> &Spec);

/// Best landmark for \p Row restricted to the subset \p Allowed of
/// landmark indices (used by the Figure 8 landmark-count sweep).
unsigned bestLandmarkWithin(const linalg::Matrix &Time,
                            const linalg::Matrix &Acc, size_t Row,
                            const std::vector<unsigned> &Allowed,
                            const std::optional<runtime::AccuracySpec> &Spec);

} // namespace core
} // namespace pbt

#endif // PBT_CORE_LABELING_H

//===- core/LevelOne.h - Level 1: clustering, landmarks, measurement --------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Level 1 of the two-level learning framework (paper Section 3.1):
///
///   Step 1  Feature extraction: the feature vector of every input at
///           every sampling level, with extraction costs recorded.
///   Step 2  Input clustering: z-score normalisation, then K-means into
///           K1 clusters over the training inputs.
///   Step 3  Landmark creation: the evolutionary autotuner runs once per
///           cluster, on the training input nearest the centroid, giving
///           K1 landmark configurations.
///   Step 4  Performance measurement: every landmark configuration runs
///           on every input, recording execution time and accuracy.
///
/// Evidence tables (time and accuracy of every landmark on every input)
/// are computed for all inputs; Level 2 consumes the training rows and the
/// evaluation harness the test rows.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_CORE_LEVELONE_H
#define PBT_CORE_LEVELONE_H

#include "autotuner/EvolutionaryAutotuner.h"
#include "linalg/Matrix.h"
#include "ml/KMeans.h"
#include "ml/Normalizer.h"
#include "runtime/TunableProgram.h"
#include "support/ThreadPool.h"

#include <vector>

namespace pbt {
namespace core {

/// How the tuning representatives are chosen (paper Section 3.1 compares
/// K-means centroids against uniformly picked landmarks and reports a 41%
/// degradation for the latter at 5 configurations).
enum class LandmarkSelection {
  /// Tune on the training input nearest each K-means centroid (default).
  KMeansCentroids,
  /// Tune on uniformly random training inputs (the ablation baseline).
  UniformRandom,
};

struct LevelOneOptions {
  /// K1, the number of input clusters = landmark configurations.
  unsigned NumLandmarks = 12;
  uint64_t Seed = 42;
  autotuner::AutotunerOptions Tuner;
  LandmarkSelection Selection = LandmarkSelection::KMeansCentroids;
  /// How many cluster members (nearest the centroid) each landmark is
  /// tuned against. Values > 1 make variable-accuracy landmarks robust on
  /// unseen inputs of the same cluster (the tuner requires the accuracy
  /// target on the whole neighbourhood, not one exemplar).
  unsigned TuningNeighborhood = 3;
  /// Optional pool parallelising landmark tuning and the measurement
  /// sweep. Results are identical with or without it.
  support::ThreadPool *Pool = nullptr;
  /// Measure one sweep column per *distinct* landmark configuration and
  /// copy it to duplicates (clusters routinely converge to the same
  /// config; the duplicate runs would repeat bit-identically). Disabled
  /// by the `pbt-bench trainbench` pre-optimisation baseline.
  bool DedupMeasurementSweep = true;
};

struct LevelOneResult {
  /// Flat feature values for every input (N x M).
  linalg::Matrix Features;
  /// Extraction cost of each flat feature for every input (N x M).
  linalg::Matrix ExtractCosts;
  /// Fitted on training rows.
  ml::Normalizer Norm;
  /// K-means over normalized training-row features. Assignment indices
  /// are positions in TrainRows, not global input ids.
  ml::KMeansResult Clusters;
  /// Global input id of each cluster's representative (nearest centroid).
  std::vector<size_t> Representatives;
  /// One tuned configuration per cluster.
  std::vector<runtime::Configuration> Landmarks;
  /// Measured execution time of every landmark on every input (N x K1).
  linalg::Matrix Time;
  /// Measured accuracy of every landmark on every input (N x K1).
  linalg::Matrix Acc;
};

/// Runs Level 1 for \p Program. \p TrainRows are the global input indices
/// available for training (clustering and tuning see only these).
LevelOneResult runLevelOne(const runtime::TunableProgram &Program,
                           const std::vector<size_t> &TrainRows,
                           const LevelOneOptions &Options);

/// Step 1 alone: extracts all flat features (values + costs) of every
/// input. Exposed for tests and the one-level baseline.
void extractAllFeatures(const runtime::TunableProgram &Program,
                        linalg::Matrix &Values, linalg::Matrix &Costs,
                        support::ThreadPool *Pool = nullptr);

} // namespace core
} // namespace pbt

#endif // PBT_CORE_LEVELONE_H

//===- core/FeatureProbe.cpp -------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/FeatureProbe.h"

using namespace pbt;
using namespace pbt::core;

FeatureProbe core::probeFromProgram(const runtime::TunableProgram &Program,
                                    size_t Input,
                                    const runtime::FeatureIndex &Index) {
  unsigned NumFlat = Index.numFlat();
  return FeatureProbe(NumFlat, [&Program, Input, &Index](unsigned Flat) {
    support::CostCounter C;
    double V = Program.extractFeature(Input, Index.propertyOf(Flat),
                                      Index.levelOf(Flat), C);
    return std::make_pair(V, C.units());
  });
}

FeatureProbe core::probeFromTable(const linalg::Matrix &Values,
                                  const linalg::Matrix &Costs, size_t Row) {
  assert(Values.rows() == Costs.rows() && Values.cols() == Costs.cols() &&
         "value/cost table mismatch");
  assert(Row < Values.rows() && "row out of range");
  unsigned NumFlat = static_cast<unsigned>(Values.cols());
  return FeatureProbe(NumFlat, [&Values, &Costs, Row](unsigned Flat) {
    return std::make_pair(Values.at(Row, Flat), Costs.at(Row, Flat));
  });
}

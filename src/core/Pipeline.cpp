//===- core/Pipeline.cpp -----------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Labeling.h"
#include "ml/CrossValidation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::core;

TrainedSystem core::trainSystem(const runtime::TunableProgram &Program,
                                const PipelineOptions &Options) {
  TrainedSystem S;
  size_t N = Program.numInputs();
  assert(N >= 4 && "need at least a few inputs");

  support::Rng SplitRng(Options.SplitSeed);
  ml::FoldSplit Split =
      ml::trainTestSplit(N, Options.TrainFraction, SplitRng);
  S.TrainRows = std::move(Split.Train);
  S.TestRows = std::move(Split.Test);

  LevelOneOptions L1Opts = Options.L1;
  if (!L1Opts.Pool)
    L1Opts.Pool = Options.Pool;
  LevelTwoOptions L2Opts = Options.L2;
  if (!L2Opts.Pool)
    L2Opts.Pool = Options.Pool;
  S.L1 = runLevelOne(Program, S.TrainRows, L1Opts);

  // Columnarize the evidence exactly once; Level 2 and evaluation share
  // this substrate (row-index views) instead of re-reading the row-major
  // tables. The label column is attached here so the labelling rule runs
  // once per training run.
  std::optional<runtime::AccuracySpec> Spec = Program.accuracy();
  if (L2Opts.UseDataset) {
    auto Data = std::make_shared<ml::Dataset>(
        S.L1.Features, S.L1.ExtractCosts, S.L1.Time, S.L1.Acc,
        Spec ? std::optional<double>(Spec->AccuracyThreshold) : std::nullopt);
    Data->setLabels(labelAllRows(S.L1.Time, S.L1.Acc, Spec));
    S.Data = std::move(Data);
  }
  S.L2 = runLevelTwo(Program, S.L1, S.TrainRows, L2Opts, S.Data.get());

  S.StaticOracleLandmark =
      selectStaticOracle(S.L1.Time, S.L1.Acc, S.TrainRows, Spec);

  // One-level baseline: the Level-1 clusters dispatch directly (cluster i
  // -> landmark i), nearest centroid in normalized space, all features.
  std::vector<unsigned> Identity(S.L1.Landmarks.size());
  for (unsigned I = 0; I != Identity.size(); ++I)
    Identity[I] = I;
  S.OneLevel = std::make_unique<OneLevelClassifier>(
      S.L1.Clusters.Centroids, S.L1.Norm, std::move(Identity));
  return S;
}

namespace {
/// Accumulates one method's evaluation over the test rows.
struct MethodStats {
  std::vector<double> SpeedupsWith;
  std::vector<double> SpeedupsWithout;
  size_t Meets = 0;

  void add(double StaticTime, double MethodTime, double FeatCost, bool Met) {
    assert(MethodTime > 0.0 && "non-positive method time");
    SpeedupsWithout.push_back(StaticTime / MethodTime);
    SpeedupsWith.push_back(StaticTime / (MethodTime + FeatCost));
    if (Met)
      ++Meets;
  }

  double satisfaction(size_t N) const {
    return N == 0 ? 1.0 : static_cast<double>(Meets) / static_cast<double>(N);
  }
};
} // namespace

namespace {
/// Everything measured for one test row; filled index-parallel so the
/// pooled evaluation reduces in the exact sequential order.
struct RowEval {
  double StaticTime = 0.0;
  bool StaticMet = false;
  double DynamicTime = 0.0;
  bool DynamicMet = false;
  double TwoTime = 0.0, TwoCost = 0.0;
  bool TwoMet = false;
  double OneTime = 0.0, OneCost = 0.0;
  bool OneMet = false;
};
} // namespace

EvaluationResult core::evaluateSystem(const runtime::TunableProgram &Program,
                                      const TrainedSystem &System,
                                      support::ThreadPool *Pool) {
  EvaluationResult R;
  std::optional<runtime::AccuracySpec> Spec = Program.accuracy();
  const LevelOneResult &L1 = System.L1;
  const ml::Dataset *Data = System.Data.get();
  const std::vector<size_t> &Rows = System.TestRows;
  unsigned Static = System.StaticOracleLandmark;

  std::vector<RowEval> Evals(Rows.size());
  auto EvalRow = [&](size_t I) {
    size_t Row = Rows[I];
    RowEval &E = Evals[I];
    E.StaticTime = L1.Time.at(Row, Static);
    // The dataset's precomputed meets bits and label column reproduce the
    // row-major predicates exactly (same threshold, same labelling rule).
    auto MeetsAt = [&](unsigned L) {
      return Data ? Data->meets(Row, L)
                  : !Spec || L1.Acc.at(Row, L) >= Spec->AccuracyThreshold;
    };
    E.StaticMet = MeetsAt(Static);

    // Dynamic oracle: per-input best landmark, no feature cost.
    unsigned Best =
        Data ? Data->label(Row) : bestLandmark(L1.Time, L1.Acc, Row, Spec);
    E.DynamicTime = L1.Time.at(Row, Best);
    E.DynamicMet = MeetsAt(Best);

    // Two-level production classifier.
    {
      FeatureProbe Probe = probeFromTable(L1.Features, L1.ExtractCosts, Row);
      unsigned Pred = System.L2.Production->classify(Probe);
      E.TwoTime = L1.Time.at(Row, Pred);
      E.TwoCost = Probe.totalCost();
      E.TwoMet = MeetsAt(Pred);
    }

    // One-level baseline.
    {
      FeatureProbe Probe = probeFromTable(L1.Features, L1.ExtractCosts, Row);
      unsigned Pred = System.OneLevel->classify(Probe);
      E.OneTime = L1.Time.at(Row, Pred);
      E.OneCost = Probe.totalCost();
      E.OneMet = MeetsAt(Pred);
    }
  };
  if (Pool)
    Pool->parallelFor(0, Rows.size(), EvalRow);
  else
    for (size_t I = 0; I != Rows.size(); ++I)
      EvalRow(I);

  MethodStats Dynamic, TwoLevel, OneLevel;
  size_t StaticMeets = 0;
  for (const RowEval &E : Evals) {
    if (E.StaticMet)
      ++StaticMeets;
    Dynamic.add(E.StaticTime, E.DynamicTime, 0.0, E.DynamicMet);
    TwoLevel.add(E.StaticTime, E.TwoTime, E.TwoCost, E.TwoMet);
    OneLevel.add(E.StaticTime, E.OneTime, E.OneCost, E.OneMet);
  }

  size_t N = Rows.size();
  R.DynamicOracle = support::mean(Dynamic.SpeedupsWithout);
  R.TwoLevelNoFeat = support::mean(TwoLevel.SpeedupsWithout);
  R.TwoLevelWithFeat = support::mean(TwoLevel.SpeedupsWith);
  R.OneLevelNoFeat = support::mean(OneLevel.SpeedupsWithout);
  R.OneLevelWithFeat = support::mean(OneLevel.SpeedupsWith);
  R.TwoLevelSatisfaction = TwoLevel.satisfaction(N);
  R.OneLevelSatisfaction = OneLevel.satisfaction(N);
  R.DynamicOracleSatisfaction = Dynamic.satisfaction(N);
  R.StaticOracleSatisfaction =
      N == 0 ? 1.0 : static_cast<double>(StaticMeets) / static_cast<double>(N);
  R.PerInputSpeedups = std::move(TwoLevel.SpeedupsWith);
  return R;
}

double core::subsetSpeedup(const runtime::TunableProgram &Program,
                           const TrainedSystem &System,
                           const std::vector<unsigned> &Subset) {
  assert(!Subset.empty() && "empty landmark subset");
  std::optional<runtime::AccuracySpec> Spec = Program.accuracy();
  const LevelOneResult &L1 = System.L1;
  std::vector<double> Speedups;
  Speedups.reserve(System.TestRows.size());
  for (size_t Row : System.TestRows) {
    double StaticTime = L1.Time.at(Row, System.StaticOracleLandmark);
    unsigned Best = bestLandmarkWithin(L1.Time, L1.Acc, Row, Subset, Spec);
    Speedups.push_back(StaticTime / L1.Time.at(Row, Best));
  }
  return support::mean(Speedups);
}

std::vector<LandmarkSweepPoint>
core::landmarkCountSweep(const runtime::TunableProgram &Program,
                         const TrainedSystem &System,
                         const std::vector<unsigned> &Counts, unsigned Trials,
                         uint64_t Seed, support::ThreadPool *Pool) {
  unsigned K = static_cast<unsigned>(System.L1.Landmarks.size());
  support::Rng Rng(Seed);

  // Draw every subset up front (one sequential Rng stream, so results are
  // independent of how the measurement below is scheduled), then measure
  // the flat trial list in parallel.
  std::vector<unsigned> ClampedCounts;
  ClampedCounts.reserve(Counts.size());
  std::vector<std::vector<unsigned>> Subsets;
  Subsets.reserve(Counts.size() * Trials);
  for (unsigned Count : Counts) {
    unsigned C = std::max(1u, std::min(Count, K));
    ClampedCounts.push_back(C);
    for (unsigned T = 0; T != Trials; ++T) {
      std::vector<size_t> Picks = Rng.sampleWithoutReplacement(K, C);
      Subsets.emplace_back(Picks.begin(), Picks.end());
    }
  }

  std::vector<double> TrialSpeedups(Subsets.size());
  auto MeasureTrial = [&](size_t I) {
    TrialSpeedups[I] = subsetSpeedup(Program, System, Subsets[I]);
  };
  if (Pool)
    Pool->parallelFor(0, Subsets.size(), MeasureTrial);
  else
    for (size_t I = 0; I != Subsets.size(); ++I)
      MeasureTrial(I);

  std::vector<LandmarkSweepPoint> Sweep;
  Sweep.reserve(Counts.size());
  for (size_t CI = 0; CI != ClampedCounts.size(); ++CI) {
    std::vector<double> Speedups(TrialSpeedups.begin() + CI * Trials,
                                 TrialSpeedups.begin() + (CI + 1) * Trials);
    LandmarkSweepPoint P;
    P.NumLandmarks = ClampedCounts[CI];
    P.Speedups = support::Summary::of(Speedups);
    Sweep.push_back(P);
  }
  return Sweep;
}

//===- core/Pipeline.cpp -----------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Labeling.h"
#include "ml/CrossValidation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;
using namespace pbt::core;

TrainedSystem core::trainSystem(const runtime::TunableProgram &Program,
                                const PipelineOptions &Options) {
  TrainedSystem S;
  size_t N = Program.numInputs();
  assert(N >= 4 && "need at least a few inputs");

  support::Rng SplitRng(Options.SplitSeed);
  ml::FoldSplit Split =
      ml::trainTestSplit(N, Options.TrainFraction, SplitRng);
  S.TrainRows = std::move(Split.Train);
  S.TestRows = std::move(Split.Test);

  S.L1 = runLevelOne(Program, S.TrainRows, Options.L1);
  S.L2 = runLevelTwo(Program, S.L1, S.TrainRows, Options.L2);

  std::optional<runtime::AccuracySpec> Spec = Program.accuracy();
  S.StaticOracleLandmark =
      selectStaticOracle(S.L1.Time, S.L1.Acc, S.TrainRows, Spec);

  // One-level baseline: the Level-1 clusters dispatch directly (cluster i
  // -> landmark i), nearest centroid in normalized space, all features.
  std::vector<unsigned> Identity(S.L1.Landmarks.size());
  for (unsigned I = 0; I != Identity.size(); ++I)
    Identity[I] = I;
  S.OneLevel = std::make_unique<OneLevelClassifier>(
      S.L1.Clusters.Centroids, S.L1.Norm, std::move(Identity));
  return S;
}

namespace {
/// Accumulates one method's evaluation over the test rows.
struct MethodStats {
  std::vector<double> SpeedupsWith;
  std::vector<double> SpeedupsWithout;
  size_t Meets = 0;

  void add(double StaticTime, double MethodTime, double FeatCost, bool Met) {
    assert(MethodTime > 0.0 && "non-positive method time");
    SpeedupsWithout.push_back(StaticTime / MethodTime);
    SpeedupsWith.push_back(StaticTime / (MethodTime + FeatCost));
    if (Met)
      ++Meets;
  }

  double satisfaction(size_t N) const {
    return N == 0 ? 1.0 : static_cast<double>(Meets) / static_cast<double>(N);
  }
};
} // namespace

EvaluationResult core::evaluateSystem(const runtime::TunableProgram &Program,
                                      const TrainedSystem &System) {
  EvaluationResult R;
  std::optional<runtime::AccuracySpec> Spec = Program.accuracy();
  const LevelOneResult &L1 = System.L1;
  const std::vector<size_t> &Rows = System.TestRows;
  unsigned Static = System.StaticOracleLandmark;

  MethodStats Dynamic, TwoLevel, OneLevel;
  size_t StaticMeets = 0;

  for (size_t Row : Rows) {
    double StaticTime = L1.Time.at(Row, Static);
    auto MeetsAt = [&](unsigned L) {
      return !Spec || L1.Acc.at(Row, L) >= Spec->AccuracyThreshold;
    };
    if (MeetsAt(Static))
      ++StaticMeets;

    // Dynamic oracle: per-input best landmark, no feature cost.
    unsigned Best = bestLandmark(L1.Time, L1.Acc, Row, Spec);
    Dynamic.add(StaticTime, L1.Time.at(Row, Best), 0.0, MeetsAt(Best));

    // Two-level production classifier.
    {
      FeatureProbe Probe = probeFromTable(L1.Features, L1.ExtractCosts, Row);
      unsigned Pred = System.L2.Production->classify(Probe);
      TwoLevel.add(StaticTime, L1.Time.at(Row, Pred), Probe.totalCost(),
                   MeetsAt(Pred));
    }

    // One-level baseline.
    {
      FeatureProbe Probe = probeFromTable(L1.Features, L1.ExtractCosts, Row);
      unsigned Pred = System.OneLevel->classify(Probe);
      OneLevel.add(StaticTime, L1.Time.at(Row, Pred), Probe.totalCost(),
                   MeetsAt(Pred));
    }
  }

  size_t N = Rows.size();
  R.DynamicOracle = support::mean(Dynamic.SpeedupsWithout);
  R.TwoLevelNoFeat = support::mean(TwoLevel.SpeedupsWithout);
  R.TwoLevelWithFeat = support::mean(TwoLevel.SpeedupsWith);
  R.OneLevelNoFeat = support::mean(OneLevel.SpeedupsWithout);
  R.OneLevelWithFeat = support::mean(OneLevel.SpeedupsWith);
  R.TwoLevelSatisfaction = TwoLevel.satisfaction(N);
  R.OneLevelSatisfaction = OneLevel.satisfaction(N);
  R.DynamicOracleSatisfaction = Dynamic.satisfaction(N);
  R.StaticOracleSatisfaction =
      N == 0 ? 1.0 : static_cast<double>(StaticMeets) / static_cast<double>(N);
  R.PerInputSpeedups = std::move(TwoLevel.SpeedupsWith);
  return R;
}

double core::subsetSpeedup(const runtime::TunableProgram &Program,
                           const TrainedSystem &System,
                           const std::vector<unsigned> &Subset) {
  assert(!Subset.empty() && "empty landmark subset");
  std::optional<runtime::AccuracySpec> Spec = Program.accuracy();
  const LevelOneResult &L1 = System.L1;
  std::vector<double> Speedups;
  Speedups.reserve(System.TestRows.size());
  for (size_t Row : System.TestRows) {
    double StaticTime = L1.Time.at(Row, System.StaticOracleLandmark);
    unsigned Best = bestLandmarkWithin(L1.Time, L1.Acc, Row, Subset, Spec);
    Speedups.push_back(StaticTime / L1.Time.at(Row, Best));
  }
  return support::mean(Speedups);
}

std::vector<LandmarkSweepPoint>
core::landmarkCountSweep(const runtime::TunableProgram &Program,
                         const TrainedSystem &System,
                         const std::vector<unsigned> &Counts, unsigned Trials,
                         uint64_t Seed) {
  unsigned K = static_cast<unsigned>(System.L1.Landmarks.size());
  support::Rng Rng(Seed);
  std::vector<LandmarkSweepPoint> Sweep;
  Sweep.reserve(Counts.size());
  for (unsigned Count : Counts) {
    unsigned C = std::max(1u, std::min(Count, K));
    std::vector<double> Speedups;
    Speedups.reserve(Trials);
    for (unsigned T = 0; T != Trials; ++T) {
      std::vector<size_t> Picks = Rng.sampleWithoutReplacement(K, C);
      std::vector<unsigned> Subset(Picks.begin(), Picks.end());
      Speedups.push_back(subsetSpeedup(Program, System, Subset));
    }
    LandmarkSweepPoint P;
    P.NumLandmarks = C;
    P.Speedups = support::Summary::of(Speedups);
    Sweep.push_back(P);
  }
  return Sweep;
}

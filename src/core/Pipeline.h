//===- core/Pipeline.h - End-to-end two-level learning pipeline -------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level entry point tying the reproduction together: split a
/// program's inputs into training and test halves (as the paper does),
/// run Level 1 and Level 2 on the training half, construct the baselines
/// (static oracle, one-level learning, dynamic oracle), and evaluate
/// everything on the test half -- producing exactly the quantities of the
/// paper's Table 1, Figure 6 and Figure 8.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_CORE_PIPELINE_H
#define PBT_CORE_PIPELINE_H

#include "core/LevelOne.h"
#include "core/LevelTwo.h"
#include "support/Statistics.h"

#include <memory>
#include <vector>

namespace pbt {
namespace core {

struct PipelineOptions {
  LevelOneOptions L1;
  LevelTwoOptions L2;
  double TrainFraction = 0.5;
  uint64_t SplitSeed = 97;
  /// Optional pool parallelising every hot stage of training (Level-1
  /// feature extraction, landmark tuning, the measurement sweep, and the
  /// Level-2 classifier zoo). Forwarded into L1.Pool/L2.Pool when those
  /// are unset. Results are identical with or without it.
  support::ThreadPool *Pool = nullptr;
};

/// A fully trained system plus everything needed to evaluate it.
struct TrainedSystem {
  LevelOneResult L1;
  LevelTwoResult L2;
  std::vector<size_t> TrainRows;
  std::vector<size_t> TestRows;
  /// The landmark every method is measured against.
  unsigned StaticOracleLandmark = 0;
  /// The traditional one-level baseline classifier.
  std::unique_ptr<InputClassifier> OneLevel;
  /// The columnar training substrate, extracted once per training run
  /// from the L1 evidence tables (label column attached) and threaded
  /// through Level 2 and evaluation. Never serialized -- it is a pure
  /// reorganisation of L1; absent when L2.UseDataset was disabled or the
  /// system was loaded from a model file.
  std::shared_ptr<const ml::Dataset> Data;
};

/// Per-method evaluation summary on the test rows: the paper's Table 1
/// row for one benchmark.
struct EvaluationResult {
  /// Mean per-input speedups over the static oracle.
  double DynamicOracle = 1.0;
  double TwoLevelNoFeat = 1.0;
  double TwoLevelWithFeat = 1.0;
  double OneLevelNoFeat = 1.0;
  double OneLevelWithFeat = 1.0;
  /// Accuracy satisfaction rates (fraction of test inputs meeting the
  /// accuracy threshold under each method's chosen configurations).
  double TwoLevelSatisfaction = 1.0;
  double OneLevelSatisfaction = 1.0;
  double DynamicOracleSatisfaction = 1.0;
  double StaticOracleSatisfaction = 1.0;
  /// Per-test-input speedups of the two-level method including feature
  /// extraction time (Figure 6 series; unsorted, parallel to TestRows).
  std::vector<double> PerInputSpeedups;
};

/// Trains the full system for \p Program.
TrainedSystem trainSystem(const runtime::TunableProgram &Program,
                          const PipelineOptions &Options);

/// Evaluates a trained system on its test rows. \p Pool, when given,
/// parallelises the per-test-row measurement; results are identical to
/// the sequential path.
EvaluationResult evaluateSystem(const runtime::TunableProgram &Program,
                                const TrainedSystem &System,
                                support::ThreadPool *Pool = nullptr);

/// One point of the Figure 8 sweep: the mean speedup over the static
/// oracle achievable with the best-in-subset rule over \p Subset of
/// landmarks, on the test rows.
double subsetSpeedup(const runtime::TunableProgram &Program,
                     const TrainedSystem &System,
                     const std::vector<unsigned> &Subset);

/// Figure 8: for each landmark count k, \p Trials random subsets are
/// drawn; the distribution of subsetSpeedup over trials is summarised.
struct LandmarkSweepPoint {
  unsigned NumLandmarks = 0;
  support::Summary Speedups;
};
std::vector<LandmarkSweepPoint>
landmarkCountSweep(const runtime::TunableProgram &Program,
                   const TrainedSystem &System,
                   const std::vector<unsigned> &Counts, unsigned Trials,
                   uint64_t Seed, support::ThreadPool *Pool = nullptr);

} // namespace core
} // namespace pbt

#endif // PBT_CORE_PIPELINE_H

//===- core/LevelTwo.cpp -----------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/LevelTwo.h"
#include "core/Labeling.h"
#include "ml/CrossValidation.h"
#include "ml/DecisionTree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>

using namespace pbt;
using namespace pbt::core;

ml::CostMatrix
core::buildCostMatrix(const linalg::Matrix &Time, const linalg::Matrix &Acc,
                      const std::vector<size_t> &Rows,
                      const std::vector<unsigned> &Labels,
                      unsigned NumLandmarks,
                      const std::optional<runtime::AccuracySpec> &Spec,
                      double Eta) {
  assert(Rows.size() == Labels.size() && "rows/labels mismatch");
  ml::CostMatrix C(NumLandmarks);

  // Accumulate per (true label i, predicted j): mean time difference Cp
  // and accuracy-violation ratio Ca.
  std::vector<double> Count(NumLandmarks, 0.0);
  linalg::Matrix Cp(NumLandmarks, NumLandmarks, 0.0);
  linalg::Matrix Ca(NumLandmarks, NumLandmarks, 0.0);
  for (size_t N = 0; N != Rows.size(); ++N) {
    unsigned I = Labels[N];
    size_t Row = Rows[N];
    Count[I] += 1.0;
    for (unsigned J = 0; J != NumLandmarks; ++J) {
      Cp.at(I, J) += Time.at(Row, J) - Time.at(Row, I);
      if (Spec && Acc.at(Row, J) < Spec->AccuracyThreshold)
        Ca.at(I, J) += 1.0;
    }
  }
  for (unsigned I = 0; I != NumLandmarks; ++I) {
    if (Count[I] == 0.0)
      continue; // empty class: zero cost row
    double MaxCp = 0.0;
    for (unsigned J = 0; J != NumLandmarks; ++J) {
      Cp.at(I, J) /= Count[I];
      Ca.at(I, J) /= Count[I];
      MaxCp = std::max(MaxCp, Cp.at(I, J));
    }
    for (unsigned J = 0; J != NumLandmarks; ++J)
      C.at(I, J) = Eta * Ca.at(I, J) * MaxCp + Cp.at(I, J);
  }
  return C;
}

std::vector<std::vector<unsigned>>
core::enumerateFeatureSubsets(const runtime::FeatureIndex &Index) {
  unsigned U = Index.numProperties();
  // Mixed-radix counter: digit u ranges over 0 (absent) .. levels(u).
  std::vector<unsigned> Digit(U, 0);
  std::vector<std::vector<unsigned>> Subsets;
  while (true) {
    // Advance the counter (skip the initial all-absent state by emitting
    // after incrementing).
    unsigned Pos = 0;
    while (Pos < U && Digit[Pos] == Index.levels(Pos)) {
      Digit[Pos] = 0;
      ++Pos;
    }
    if (Pos == U)
      break;
    ++Digit[Pos];

    std::vector<unsigned> Subset;
    for (unsigned P = 0; P != U; ++P)
      if (Digit[P] > 0)
        Subset.push_back(Index.flat(P, Digit[P] - 1));
    if (!Subset.empty())
      Subsets.push_back(std::move(Subset));
  }
  return Subsets;
}

namespace {
/// Everything needed to score candidates against measured evidence.
struct ScoringContext {
  const linalg::Matrix &Features;
  const linalg::Matrix &ExtractCosts;
  const linalg::Matrix &Time;
  const linalg::Matrix &Acc;
  const std::optional<runtime::AccuracySpec> &Spec;
};

/// Direct-column feature reader for the dataset path: replays
/// FeatureProbe's accounting -- each feature's extraction cost charged
/// exactly once, at first touch, in touch order -- against the columnar
/// tables, without the per-row vector allocations and std::function
/// dispatch probeFromTable pays.
class ColumnProbe {
public:
  explicit ColumnProbe(const ml::Dataset &D)
      : D(D), Touched(D.numFeatures(), 0) {
    TouchedList.reserve(D.numFeatures());
  }
  void beginRow(size_t NewRow) {
    for (unsigned F : TouchedList)
      Touched[F] = 0;
    TouchedList.clear();
    RowCost = 0.0;
    Row = NewRow;
  }
  double operator()(unsigned F) {
    if (!Touched[F]) {
      Touched[F] = 1;
      TouchedList.push_back(F);
      RowCost += D.costCol(F)[Row];
    }
    return D.featureCol(F)[Row];
  }
  double totalCost() const { return RowCost; }

private:
  const ml::Dataset &D;
  std::vector<uint8_t> Touched;
  std::vector<unsigned> TouchedList;
  double RowCost = 0.0;
  size_t Row = 0;
};
} // namespace

/// scoreOnRows' twin over dataset columns: identical accumulation order,
/// so every score is bit-identical to the row-major path.
template <class PredictFn>
static CandidateScore
scoreOnColumns(const ml::Dataset &D,
               const std::optional<runtime::AccuracySpec> &Spec,
               const std::vector<size_t> &Rows, const std::string &Name,
               ColumnProbe &Probe, PredictFn &&Predict) {
  CandidateScore S;
  S.Name = Name;
  if (Rows.empty())
    return S;
  double SumWith = 0.0, SumWithout = 0.0;
  size_t Meets = 0;
  for (size_t Row : Rows) {
    Probe.beginRow(Row);
    unsigned Pred = Predict(Row, Probe);
    SumWithout += D.timeCol(Pred)[Row];
    SumWith += D.timeCol(Pred)[Row] + Probe.totalCost();
    if (!Spec || D.meets(Row, Pred))
      ++Meets;
  }
  S.Objective = SumWith / static_cast<double>(Rows.size());
  S.ObjectiveNoFeat = SumWithout / static_cast<double>(Rows.size());
  S.Satisfaction =
      static_cast<double>(Meets) / static_cast<double>(Rows.size());
  S.Valid = !Spec || S.Satisfaction >= Spec->SatisfactionThreshold;
  return S;
}

/// Scores \p Predict (returning a landmark and accumulating feature cost
/// via the probe) over table rows \p Rows.
static CandidateScore
scoreOnRows(const ScoringContext &Ctx, const std::vector<size_t> &Rows,
            const std::string &Name,
            const std::function<unsigned(FeatureProbe &, size_t)> &Predict) {
  CandidateScore S;
  S.Name = Name;
  if (Rows.empty())
    return S;
  double SumWith = 0.0, SumWithout = 0.0;
  size_t Meets = 0;
  for (size_t Row : Rows) {
    FeatureProbe Probe = probeFromTable(Ctx.Features, Ctx.ExtractCosts, Row);
    unsigned Pred = Predict(Probe, Row);
    SumWithout += Ctx.Time.at(Row, Pred);
    SumWith += Ctx.Time.at(Row, Pred) + Probe.totalCost();
    if (!Ctx.Spec || Ctx.Acc.at(Row, Pred) >= Ctx.Spec->AccuracyThreshold)
      ++Meets;
  }
  S.Objective = SumWith / static_cast<double>(Rows.size());
  S.ObjectiveNoFeat = SumWithout / static_cast<double>(Rows.size());
  S.Satisfaction = static_cast<double>(Meets) / static_cast<double>(Rows.size());
  S.Valid = !Ctx.Spec || S.Satisfaction >= Ctx.Spec->SatisfactionThreshold;
  return S;
}

/// Averages per-fold scores into one candidate score. Validity follows
/// the paper's satisfaction-threshold rule applied to the pooled held-out
/// satisfaction rate, tightened by the selection margin.
static CandidateScore
averageScores(const std::string &Name, const std::vector<CandidateScore> &Folds,
              const std::optional<runtime::AccuracySpec> &Spec,
              double SelectionMargin) {
  CandidateScore S;
  S.Name = Name;
  if (Folds.empty())
    return S;
  S.Satisfaction = 0.0; // default is 1.0; reset before accumulating
  for (const CandidateScore &F : Folds) {
    S.Objective += F.Objective;
    S.ObjectiveNoFeat += F.ObjectiveNoFeat;
    S.Satisfaction += F.Satisfaction;
  }
  double N = static_cast<double>(Folds.size());
  S.Objective /= N;
  S.ObjectiveNoFeat /= N;
  S.Satisfaction /= N;
  S.Valid = !Spec ||
            S.Satisfaction >= std::min(1.0, Spec->SatisfactionThreshold +
                                                SelectionMargin);
  return S;
}

/// Subset name like "tree{sortedness@1,deviation@0}".
static std::string subsetName(const runtime::FeatureIndex &Index,
                              const std::vector<unsigned> &Subset) {
  std::string Name = "tree{";
  for (size_t I = 0; I != Subset.size(); ++I) {
    if (I)
      Name += ",";
    Name += Index.flatName(Subset[I]);
  }
  Name += "}";
  return Name;
}

/// Flat features ordered by mean extraction cost over training rows
/// (cheapest first), the acquisition order of the incremental classifier.
static std::vector<unsigned>
cheapestFirstOrder(const linalg::Matrix &ExtractCosts,
                   const std::vector<size_t> &Rows,
                   const std::vector<unsigned> &Candidates) {
  std::vector<double> MeanCost(Candidates.size(), 0.0);
  for (size_t C = 0; C != Candidates.size(); ++C) {
    for (size_t Row : Rows)
      MeanCost[C] += ExtractCosts.at(Row, Candidates[C]);
    if (!Rows.empty())
      MeanCost[C] /= static_cast<double>(Rows.size());
  }
  std::vector<size_t> Order(Candidates.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return MeanCost[A] < MeanCost[B]; });
  std::vector<unsigned> Out(Candidates.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Out[I] = Candidates[Order[I]];
  return Out;
}

LevelTwoResult core::runLevelTwo(const runtime::TunableProgram &Program,
                                 const LevelOneResult &L1,
                                 const std::vector<size_t> &TrainRows,
                                 const LevelTwoOptions &Options,
                                 const ml::Dataset *Data) {
  LevelTwoResult R;
  std::optional<runtime::AccuracySpec> Spec = Program.accuracy();
  unsigned K = static_cast<unsigned>(L1.Landmarks.size());
  runtime::FeatureIndex Index(Program.features());

  // The columnar substrate: passed through by the pipeline (extracted
  // once per training run), columnarized locally for direct callers, or
  // absent entirely on the row-major reference path.
  std::optional<ml::Dataset> LocalData;
  if (Options.UseDataset && !Data) {
    LocalData.emplace(L1.Features, L1.ExtractCosts, L1.Time, L1.Acc,
                      Spec ? std::optional<double>(Spec->AccuracyThreshold)
                           : std::nullopt);
    LocalData->setLabels(labelAllRows(L1.Time, L1.Acc, Spec));
    Data = &*LocalData;
  }
  if (!Options.UseDataset)
    Data = nullptr;
  assert((!Data || Data->hasLabels()) &&
         "dataset must carry its label column");

  // --- Cluster refinement: performance-based re-labelling. ---
  if (Data) {
    R.TrainLabels.reserve(TrainRows.size());
    for (size_t Row : TrainRows)
      R.TrainLabels.push_back(Data->label(Row));
  } else {
    R.TrainLabels = labelRows(L1.Time, L1.Acc, TrainRows, Spec);
  }
  size_t Moved = 0;
  for (size_t I = 0; I != TrainRows.size(); ++I)
    if (R.TrainLabels[I] != L1.Clusters.Assignment[I])
      ++Moved;
  R.RefinementMoveFraction =
      TrainRows.empty() ? 0.0
                        : static_cast<double>(Moved) /
                              static_cast<double>(TrainRows.size());

  // --- Cost matrix. ---
  R.Costs = buildCostMatrix(L1.Time, L1.Acc, TrainRows, R.TrainLabels, K, Spec,
                            Options.Eta);

  ScoringContext Ctx{L1.Features, L1.ExtractCosts, L1.Time, L1.Acc, Spec};

  // Labels addressed by global row id (for training on fold subsets).
  std::vector<unsigned> LabelOfRow(L1.Features.rows(), 0);
  for (size_t I = 0; I != TrainRows.size(); ++I)
    LabelOfRow[TrainRows[I]] = R.TrainLabels[I];

  // Cross-validation folds over positions in TrainRows, materialised to
  // global row ids exactly once (the row-major path used to re-gather
  // them per candidate per fold).
  support::Rng Rng(Options.Seed);
  unsigned Folds = std::max(2u, Options.CVFolds);
  std::vector<ml::FoldSplit> Splits =
      ml::kFoldSplits(TrainRows.size(), Folds, Rng);
  size_t NumFolds = Splits.size();
  std::vector<std::vector<size_t>> FoldTrain(NumFolds), FoldTest(NumFolds);
  for (size_t FI = 0; FI != NumFolds; ++FI) {
    FoldTrain[FI] = ml::gatherRows(TrainRows, Splits[FI].Train);
    FoldTest[FI] = ml::gatherRows(TrainRows, Splits[FI].Test);
  }

  ml::DecisionTreeOptions TreeOpts = Options.Tree;
  TreeOpts.Costs = &R.Costs;

  // --- Candidate (0): static-best (no input adaptation). Scored like
  // every other candidate; its presence guarantees a valid candidate
  // whenever the static oracle meets the satisfaction threshold, so the
  // selection fallback only triggers when *no* configuration covers the
  // inputs. ---
  {
    std::vector<CandidateScore> FoldScores;
    for (size_t FI = 0; FI != NumFolds; ++FI) {
      unsigned Static =
          selectStaticOracle(L1.Time, L1.Acc, FoldTrain[FI], Spec);
      if (Data) {
        ColumnProbe Probe(*Data);
        FoldScores.push_back(scoreOnColumns(
            *Data, Spec, FoldTest[FI], "static-best", Probe,
            [&](size_t, ColumnProbe &) { return Static; }));
      } else {
        FoldScores.push_back(scoreOnRows(
            Ctx, FoldTest[FI], "static-best",
            [&](FeatureProbe &, size_t) { return Static; }));
      }
    }
    R.Candidates.push_back(averageScores("static-best", FoldScores, Spec,
                                         Options.SelectionMargin));
  }

  // --- Candidate (1): max-a-priori. ---
  {
    std::vector<CandidateScore> FoldScores;
    for (size_t FI = 0; FI != NumFolds; ++FI) {
      ml::MaxApriori Prior;
      std::vector<unsigned> Y;
      Y.reserve(FoldTrain[FI].size());
      for (size_t Row : FoldTrain[FI])
        Y.push_back(LabelOfRow[Row]);
      Prior.fit(Y, K);
      if (Data) {
        ColumnProbe Probe(*Data);
        FoldScores.push_back(scoreOnColumns(
            *Data, Spec, FoldTest[FI], "max-apriori", Probe,
            [&](size_t, ColumnProbe &) { return Prior.predict(); }));
      } else {
        FoldScores.push_back(scoreOnRows(
            Ctx, FoldTest[FI], "max-apriori",
            [&](FeatureProbe &, size_t) { return Prior.predict(); }));
      }
    }
    R.Candidates.push_back(averageScores("max-apriori", FoldScores, Spec, Options.SelectionMargin));
  }

  // --- Candidates (2)/(3): exhaustive per-property subset trees. Each
  // (subset, fold) fit is independent, so the sweep runs on the pool;
  // scores land in an index-addressed array and the selection below
  // stays sequential, making pooled and serial runs identical. ---
  std::vector<std::vector<unsigned>> Subsets = enumerateFeatureSubsets(Index);
  std::vector<CandidateScore> SubsetScores(Subsets.size());

  if (Data) {
    // Dataset path: one presorted base per fold feeds every subset's
    // SPRINT-style tree fit; the flattened (subset x fold) task list
    // keeps small retrain reservoirs from serialising behind a handful
    // of coarse subset tasks; and a per-fold fitted-tree cache exploits
    // the zoo's heavy overlap -- subsets whose extra features never
    // split fit the *same* tree, whose held-out score depends only on
    // the fitted structure, so one evaluation serves them all. Fold row
    // sets compose as views of the training view.
    ml::RowView TrainView = ml::RowView::of(*Data, TrainRows);
    std::vector<std::unique_ptr<ml::PresortedBase>> FoldBases(NumFolds);
    for (size_t FI = 0; FI != NumFolds; ++FI)
      FoldBases[FI] = std::make_unique<ml::PresortedBase>(
          *Data, TrainView.subset(Splits[FI].Train));

    struct FoldCache {
      std::mutex Lock;
      std::map<std::string, CandidateScore> Scores;
    };
    std::vector<FoldCache> Caches(NumFolds);

    size_t NumTasks = Subsets.size() * NumFolds;
    std::vector<CandidateScore> TaskScores(NumTasks);
    auto ScoreTask = [&](size_t TI) {
      size_t SI = TI / NumFolds, FI = TI % NumFolds;
      ml::PresortedView View(*FoldBases[FI], Subsets[SI]);
      ml::DecisionTree Tree;
      Tree.fit(*Data, LabelOfRow, K, TreeOpts, View);
      std::string TreeKey = Tree.structuralKey();
      FoldCache &Cache = Caches[FI];
      {
        std::lock_guard<std::mutex> Lock(Cache.Lock);
        auto It = Cache.Scores.find(TreeKey);
        if (It != Cache.Scores.end()) {
          TaskScores[TI] = It->second;
          return;
        }
      }
      ColumnProbe Probe(*Data);
      CandidateScore S = scoreOnColumns(
          *Data, Spec, FoldTest[FI], std::string(), Probe,
          [&Tree](size_t, ColumnProbe &P) {
            return Tree.predictWith([&P](unsigned F) { return P(F); });
          });
      {
        std::lock_guard<std::mutex> Lock(Cache.Lock);
        Cache.Scores.emplace(std::move(TreeKey), S);
      }
      TaskScores[TI] = S;
    };
    if (Options.Pool) {
      size_t Grain = std::max<size_t>(
          1, NumTasks / (static_cast<size_t>(Options.Pool->numThreads()) * 8));
      Options.Pool->parallelFor(0, NumTasks, ScoreTask, Grain);
    } else {
      for (size_t TI = 0; TI != NumTasks; ++TI)
        ScoreTask(TI);
    }
    for (size_t SI = 0; SI != Subsets.size(); ++SI) {
      std::string Name = subsetName(Index, Subsets[SI]);
      std::vector<CandidateScore> FoldScores(
          TaskScores.begin() + SI * NumFolds,
          TaskScores.begin() + (SI + 1) * NumFolds);
      SubsetScores[SI] =
          averageScores(Name, FoldScores, Spec, Options.SelectionMargin);
    }
  } else {
    auto ScoreSubset = [&](size_t SI) {
      const std::vector<unsigned> &Subset = Subsets[SI];
      std::string Name = subsetName(Index, Subset);
      ml::DecisionTreeOptions SubOpts = TreeOpts;
      SubOpts.AllowedFeatures = Subset;

      std::vector<CandidateScore> FoldScores;
      for (size_t FI = 0; FI != NumFolds; ++FI) {
        ml::DecisionTree Tree;
        Tree.fit(L1.Features, LabelOfRow, K, SubOpts, FoldTrain[FI]);
        FoldScores.push_back(scoreOnRows(
            Ctx, FoldTest[FI], Name, [&](FeatureProbe &Probe, size_t) {
              return Tree.predictLazy(
                  [&Probe](unsigned F) { return Probe.value(F); });
            }));
      }
      SubsetScores[SI] =
          averageScores(Name, FoldScores, Spec, Options.SelectionMargin);
    };
    if (Options.Pool)
      Options.Pool->parallelFor(0, Subsets.size(), ScoreSubset);
    else
      for (size_t SI = 0; SI != Subsets.size(); ++SI)
        ScoreSubset(SI);
  }

  size_t BestSubsetIdx = 0;
  double BestSubsetObjective = std::numeric_limits<double>::max();
  for (size_t SI = 0; SI != Subsets.size(); ++SI) {
    CandidateScore &S = SubsetScores[SI];
    if (S.Valid && S.Objective < BestSubsetObjective) {
      BestSubsetObjective = S.Objective;
      BestSubsetIdx = SI;
    }
    R.Candidates.push_back(std::move(S));
  }

  // --- Candidate (4): incremental feature examination, over all features
  // and over the best subset, cheapest first. ---
  std::vector<unsigned> AllFlat(Index.numFlat());
  std::iota(AllFlat.begin(), AllFlat.end(), 0);
  std::vector<std::pair<std::string, std::vector<unsigned>>> IncrementalRuns =
      {{"incremental{all}",
        cheapestFirstOrder(L1.ExtractCosts, TrainRows, AllFlat)},
       {"incremental{best-subset}",
        cheapestFirstOrder(L1.ExtractCosts, TrainRows,
                           Subsets[BestSubsetIdx])}};
  for (const auto &[Name, Order] : IncrementalRuns) {
    std::vector<CandidateScore> FoldScores;
    for (size_t FI = 0; FI != NumFolds; ++FI) {
      ml::IncrementalBayes Bayes;
      Bayes.fit(L1.Features, LabelOfRow, K, Order, Options.Bayes,
                FoldTrain[FI]);
      if (Data) {
        ColumnProbe Probe(*Data);
        FoldScores.push_back(scoreOnColumns(
            *Data, Spec, FoldTest[FI], Name, Probe,
            [&Bayes](size_t, ColumnProbe &P) {
              return Bayes.predictWith([&P](unsigned F) { return P(F); })
                  .Label;
            }));
      } else {
        FoldScores.push_back(
            scoreOnRows(Ctx, FoldTest[FI], Name, [&](FeatureProbe &Probe,
                                                     size_t) {
              return Bayes
                  .predictLazy([&Probe](unsigned F) { return Probe.value(F); })
                  .Label;
            }));
      }
    }
    R.Candidates.push_back(averageScores(Name, FoldScores, Spec, Options.SelectionMargin));
  }

  // --- Candidate selection. ---
  size_t Selected = 0;
  bool AnyValid = false;
  for (size_t I = 0; I != R.Candidates.size(); ++I) {
    const CandidateScore &S = R.Candidates[I];
    if (S.Valid && (!AnyValid || S.Objective < R.Candidates[Selected].Objective)) {
      Selected = I;
      AnyValid = true;
    }
  }
  if (!AnyValid) {
    // No candidate clears the satisfaction bar: fall back to the highest
    // satisfaction, then lowest objective.
    for (size_t I = 1; I != R.Candidates.size(); ++I) {
      const CandidateScore &S = R.Candidates[I];
      const CandidateScore &Cur = R.Candidates[Selected];
      if (S.Satisfaction > Cur.Satisfaction ||
          (S.Satisfaction == Cur.Satisfaction && S.Objective < Cur.Objective))
        Selected = I;
    }
  }
  R.SelectedName = R.Candidates[Selected].Name;

  // --- Retrain the selected family on all training rows. ---
  if (R.SelectedName == "static-best") {
    unsigned Static = selectStaticOracle(L1.Time, L1.Acc, TrainRows, Spec);
    R.Production = std::make_unique<ConstantClassifier>(Static);
  } else if (R.SelectedName == "max-apriori") {
    ml::MaxApriori Prior;
    Prior.fit(R.TrainLabels, K);
    R.Production = std::make_unique<MaxAprioriClassifier>(std::move(Prior));
  } else if (R.SelectedName.rfind("incremental", 0) == 0) {
    const auto &Order = R.SelectedName == "incremental{all}"
                            ? IncrementalRuns[0].second
                            : IncrementalRuns[1].second;
    ml::IncrementalBayes Bayes;
    Bayes.fit(L1.Features, LabelOfRow, K, Order, Options.Bayes, TrainRows);
    R.Production =
        std::make_unique<IncrementalClassifier>(std::move(Bayes), R.SelectedName);
  } else {
    // A subset tree: find its subset by name.
    size_t SubsetIdx = BestSubsetIdx;
    for (size_t SI = 0; SI != Subsets.size(); ++SI)
      if (subsetName(Index, Subsets[SI]) == R.SelectedName) {
        SubsetIdx = SI;
        break;
      }
    ml::DecisionTreeOptions SubOpts = TreeOpts;
    SubOpts.AllowedFeatures = Subsets[SubsetIdx];
    ml::DecisionTree Tree;
    if (Data) {
      ml::PresortedBase TrainBase(*Data, ml::RowView::of(*Data, TrainRows));
      ml::PresortedView View(TrainBase, Subsets[SubsetIdx]);
      Tree.fit(*Data, LabelOfRow, K, SubOpts, View);
    } else {
      Tree.fit(L1.Features, LabelOfRow, K, SubOpts, TrainRows);
    }
    R.Production = std::make_unique<SubsetTreeClassifier>(
        std::move(Tree), Subsets[SubsetIdx], R.SelectedName);
  }
  return R;
}

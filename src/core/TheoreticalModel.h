//===- core/TheoreticalModel.h - Diminishing-returns model ------------------==//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closed-form model of paper Section 4.3. The input space is covered
/// by regions; region i has size p_i (fraction of inputs) and dominant-
/// configuration speedup s_i. With k landmark configurations sampled
/// uniformly at random, the chance of missing region i is (1 - p_i)^k, so
/// the expected speedup loss is
///
///     L = sum_i (1 - p_i)^k p_i s_i / sum_i s_i.
///
/// Solving dL/dp = 0 for a single region gives the worst-case region size
/// p* = 1/(k+1) (Figure 7a); tiling the space with worst-case regions
/// yields the predicted fraction of full speedup achieved with k
/// landmarks, 1 - (1 - 1/(k+1))^k (Figure 7b), which saturates towards
/// 1 - 1/e -- the paper's diminishing-returns argument for needing only a
/// handful of landmarks.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_CORE_THEORETICALMODEL_H
#define PBT_CORE_THEORETICALMODEL_H

#include <vector>

namespace pbt {
namespace core {

/// Expected speedup loss L for regions of sizes \p RegionSizes with
/// speedups \p RegionSpeedups under \p K uniformly sampled landmarks.
double expectedSpeedupLoss(const std::vector<double> &RegionSizes,
                           const std::vector<double> &RegionSpeedups,
                           unsigned K);

/// Loss contribution (1-p)^k * p of a single unit-speedup region of size
/// \p P (the Figure 7a curves).
double regionLossContribution(double P, unsigned K);

/// The region size maximising the loss for \p K landmarks: 1/(K+1).
double worstCaseRegionSize(unsigned K);

/// Predicted fraction of the full speedup achieved with \p K landmarks
/// under worst-case region sizes (the Figure 7b curve).
double predictedSpeedupFraction(unsigned K);

} // namespace core
} // namespace pbt

#endif // PBT_CORE_THEORETICALMODEL_H

//===- core/Classifiers.cpp --------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/Classifiers.h"

using namespace pbt;
using namespace pbt::core;

InputClassifier::~InputClassifier() = default;

void OneLevelClassifier::compileInto(ml::CompiledArena &A,
                                     ml::CompiledClassifier &Out) const {
  Out.Kind = ml::CompiledKind::OneLevel;
  Out.NumCentroids = static_cast<uint32_t>(Centroids.rows());
  Out.Dim = static_cast<uint32_t>(Centroids.cols());
  // Matrix is already dense row-major; inline it verbatim.
  Out.CentroidBase = A.appendF64(Centroids.data().data(),
                                 Centroids.data().size());
  Out.NormBase = Norm.compileInto(A);
  std::vector<int32_t> CL(ClusterLandmark.begin(), ClusterLandmark.end());
  Out.ClusterLandmarkBase = A.appendI32(CL.data(), CL.size());
}

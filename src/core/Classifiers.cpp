//===- core/Classifiers.cpp --------------------------------------------------=//
//
// Part of the pbtuner project.
//
//===----------------------------------------------------------------------===//

#include "core/Classifiers.h"

using namespace pbt;
using namespace pbt::core;

InputClassifier::~InputClassifier() = default;
